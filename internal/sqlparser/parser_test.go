package sqlparser

import (
	"testing"
)

// roundTrip parses sql, renders it, reparses, and checks the two renderings
// agree — the parser's main correctness property.
func roundTrip(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	out1 := stmt.SQL()
	stmt2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse %q: %v", out1, err)
	}
	out2 := stmt2.SQL()
	if out1 != out2 {
		t.Fatalf("round trip unstable:\n 1: %s\n 2: %s", out1, out2)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := roundTrip(t, "SELECT a, b FROM t WHERE a = 1")
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if len(stmt.From) != 1 {
		t.Fatalf("from = %d", len(stmt.From))
	}
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where = %#v", stmt.Where)
	}
}

func TestParseStar(t *testing.T) {
	stmt := roundTrip(t, "SELECT * FROM t")
	if !stmt.Items[0].Star {
		t.Fatal("expected star item")
	}
	stmt = roundTrip(t, "SELECT t.* FROM t")
	if !stmt.Items[0].Star || stmt.Items[0].Table != "t" {
		t.Fatal("expected qualified star")
	}
}

func TestParseAliases(t *testing.T) {
	stmt := roundTrip(t, "SELECT a AS x, b y FROM orders o, customer AS c")
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "y" {
		t.Fatalf("aliases = %q, %q", stmt.Items[0].Alias, stmt.Items[1].Alias)
	}
	bt := stmt.From[0].(*BaseTable)
	if bt.Name != "orders" || bt.Alias != "o" {
		t.Fatalf("table = %+v", bt)
	}
	bt2 := stmt.From[1].(*BaseTable)
	if bt2.Alias != "c" {
		t.Fatalf("table = %+v", bt2)
	}
}

func TestParseExplicitJoins(t *testing.T) {
	stmt := roundTrip(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y`)
	j, ok := stmt.From[0].(*JoinExpr)
	if !ok || j.Type != JoinLeft {
		t.Fatalf("outer join = %#v", stmt.From[0])
	}
	inner, ok := j.Left.(*JoinExpr)
	if !ok || inner.Type != JoinInner {
		t.Fatalf("inner join = %#v", j.Left)
	}
	roundTrip(t, "SELECT * FROM a CROSS JOIN b")
	roundTrip(t, "SELECT * FROM a INNER JOIN b ON a.x = b.x")
	roundTrip(t, "SELECT * FROM a RIGHT JOIN b ON a.x = b.x")
	roundTrip(t, "SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x")
}

func TestParseMissingOnError(t *testing.T) {
	if _, err := Parse("SELECT * FROM a JOIN b"); err == nil {
		t.Fatal("expected error for join without ON")
	}
}

func TestParsePredicates(t *testing.T) {
	stmt := roundTrip(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4) AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3 AND e LIKE 'x%' AND f NOT LIKE '%y' AND g IS NULL AND h IS NOT NULL`)
	count := 0
	WalkExpr(stmt.Where, func(e Expr) bool {
		switch e.(type) {
		case *InExpr, *BetweenExpr, *LikeExpr, *IsNullExpr:
			count++
		}
		return true
	})
	if count != 8 {
		t.Fatalf("predicate count = %d, want 8", count)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op should be OR: %#v", stmt.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR should be AND: %#v", or.R)
	}

	stmt = roundTrip(t, "SELECT a + b * c FROM t")
	add := stmt.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top arith should be +: %#v", add)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Fatalf("right should be *: %#v", add.R)
	}
}

func TestParseNotPrecedence(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE NOT a = 1 AND b = 2")
	and := stmt.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top should be AND, got %s", and.Op)
	}
	if _, ok := and.L.(*UnaryExpr); !ok {
		t.Fatalf("left should be NOT expr: %#v", and.L)
	}
}

func TestParseSubqueries(t *testing.T) {
	stmt := roundTrip(t, `SELECT a FROM t WHERE x IN (SELECT y FROM u) AND EXISTS (SELECT 1 FROM v WHERE v.k = t.k) AND z > (SELECT AVG(w) FROM r)`)
	var subs int
	WalkStatement(stmt, func(*SelectStmt) { subs++ })
	if subs != 4 { // outer + 3 subqueries
		t.Fatalf("statements = %d, want 4", subs)
	}
}

func TestParseQuantified(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE x > ALL (SELECT y FROM u)")
	q, ok := stmt.Where.(*QuantifiedExpr)
	if !ok || q.Quantifier != "ALL" || q.Op != ">" {
		t.Fatalf("quantified = %#v", stmt.Where)
	}
}

func TestParseDerivedTable(t *testing.T) {
	stmt := roundTrip(t, "SELECT s.a FROM (SELECT a FROM t WHERE b = 1) s WHERE s.a > 0")
	d, ok := stmt.From[0].(*SubqueryRef)
	if !ok || d.Alias != "s" {
		t.Fatalf("derived = %#v", stmt.From[0])
	}
}

func TestParseCTE(t *testing.T) {
	stmt := roundTrip(t, `WITH r (a, b) AS (SELECT x, y FROM t), s AS (SELECT z FROM u) SELECT r.a FROM r, s WHERE r.a = s.z`)
	if len(stmt.With) != 2 {
		t.Fatalf("ctes = %d", len(stmt.With))
	}
	if stmt.With[0].Name != "r" || len(stmt.With[0].Columns) != 2 {
		t.Fatalf("cte = %+v", stmt.With[0])
	}
	bts := BaseTables(stmt)
	for _, bt := range bts {
		if bt.Name == "r" || bt.Name == "s" {
			t.Fatalf("CTE name %q leaked into base tables", bt.Name)
		}
	}
}

func TestParseGroupHavingOrder(t *testing.T) {
	stmt := roundTrip(t, `SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING SUM(b) > 10 ORDER BY s DESC, a ASC LIMIT 5 OFFSET 2`)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Fatal("group/having missing")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order = %+v", stmt.OrderBy)
	}
	if stmt.Limit == nil || *stmt.Limit != 5 || stmt.Offset == nil || *stmt.Offset != 2 {
		t.Fatal("limit/offset missing")
	}
}

func TestParseTopAndDistinct(t *testing.T) {
	stmt := roundTrip(t, "SELECT DISTINCT TOP 10 a FROM t")
	if !stmt.Distinct || stmt.Top == nil || *stmt.Top != 10 {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := roundTrip(t, "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b * c), AVG(d) FROM t")
	fc := stmt.Items[0].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "COUNT" {
		t.Fatalf("count(*) = %+v", fc)
	}
	fc2 := stmt.Items[1].Expr.(*FuncCall)
	if !fc2.Distinct {
		t.Fatal("count distinct flag lost")
	}
}

func TestParseCase(t *testing.T) {
	roundTrip(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t`)
	stmt := roundTrip(t, `SELECT CASE a WHEN 1 THEN 'one' END FROM t`)
	ce := stmt.Items[0].Expr.(*CaseExpr)
	if ce.Operand == nil {
		t.Fatal("simple CASE operand missing")
	}
	if _, err := Parse("SELECT CASE END FROM t"); err == nil {
		t.Fatal("expected error for empty CASE")
	}
}

func TestParseCastIntervalExtractSubstring(t *testing.T) {
	roundTrip(t, "SELECT CAST(a AS DECIMAL(12,2)) FROM t")
	stmt := roundTrip(t, "SELECT a FROM t WHERE d < '1998-12-01' AND d >= DATE_SUB('1998-12-01') AND e < INTERVAL '3' month")
	_ = stmt
	stmt = roundTrip(t, "SELECT EXTRACT(year FROM o_orderdate) FROM orders")
	fc := stmt.Items[0].Expr.(*FuncCall)
	if fc.Name != "EXTRACT_YEAR" {
		t.Fatalf("extract = %+v", fc)
	}
	roundTrip(t, "SELECT SUBSTRING(c_phone FROM 1 FOR 2) FROM customer")
	roundTrip(t, "SELECT SUBSTRING(c_phone, 1, 2) FROM customer")
}

func TestParseUnion(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t UNION ALL SELECT b FROM u")
	if stmt.UnionAll == nil || stmt.UnionDedup {
		t.Fatal("union all missing")
	}
	stmt = roundTrip(t, "SELECT a FROM t UNION SELECT b FROM u")
	if stmt.UnionAll == nil || !stmt.UnionDedup {
		t.Fatal("union dedup missing")
	}
}

func TestParseParams(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE b = ? AND c > ?")
	params := 0
	WalkExpr(stmt.Where, func(e Expr) bool {
		if l, ok := e.(*Literal); ok && l.Kind == LitParam {
			params++
		}
		return true
	})
	if params != 2 {
		t.Fatalf("params = %d", params)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t WHERE a IS 5",
		"SELECT a FROM t extra garbage ,",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT CAST(a to int) FROM t",
		"SELECT a b c FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("NOT SQL AT ALL")
}

func TestParseTPCHStyleQueries(t *testing.T) {
	queries := []string{
		// Q1-style
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, COUNT(*) AS count_order
		 FROM lineitem WHERE l_shipdate <= '1998-09-02'
		 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
		// Q3-style
		`SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, o_shippriority
		 FROM customer, orders, lineitem
		 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15'
		 GROUP BY l_orderkey, o_orderdate, o_shippriority
		 ORDER BY revenue DESC, o_orderdate LIMIT 10`,
		// Q4-style with EXISTS
		`SELECT o_orderpriority, COUNT(*) AS order_count FROM orders
		 WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
		   AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
		 GROUP BY o_orderpriority ORDER BY o_orderpriority`,
		// Q15-style with CTE
		`WITH revenue (supplier_no, total_revenue) AS (
			SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) FROM lineitem
			WHERE l_shipdate >= '1996-01-01' GROUP BY l_suppkey)
		 SELECT s_suppkey, s_name, total_revenue FROM supplier, revenue
		 WHERE s_suppkey = supplier_no AND total_revenue = (SELECT MAX(total_revenue) FROM revenue)
		 ORDER BY s_suppkey`,
	}
	for i, q := range queries {
		stmt := roundTrip(t, q)
		if len(BaseTables(stmt)) == 0 {
			t.Fatalf("query %d: no base tables found", i)
		}
	}
}
