package sqlparser

import "testing"

// FuzzParse checks the parser on arbitrary input: it must never panic, and
// anything it accepts must print to SQL that parses again with a stable
// printed form (print∘parse is idempotent).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM orders",
		"SELECT o_custkey, COUNT(*) FROM orders WHERE o_totalprice > 100 GROUP BY o_custkey HAVING COUNT(*) > 2 ORDER BY o_custkey DESC",
		"SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
		"SELECT x FROM t WHERE y IN (1, 2, 3) AND z BETWEEN 1 AND 5",
		"SELECT x FROM t WHERE c LIKE 'a%' AND d IS NOT NULL",
		"SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
		"SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CAST(x AS INT) FROM (SELECT y AS x FROM u) AS sub",
		"SELECT x FROM t WHERE a = ANY (SELECT b FROM u)",
		"SELECT 'it''s' FROM t",
		"SELECT",
		"",
		"NOT SQL AT ALL",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatal("nil statement with nil error")
		}
		printed := stmt.SQL()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not re-parse: %v\ninput:   %q\nprinted: %q", err, sql, printed)
		}
		if again := stmt2.SQL(); again != printed {
			t.Fatalf("printing is not stable:\nfirst:  %q\nsecond: %q", printed, again)
		}
	})
}
