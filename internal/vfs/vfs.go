// Package vfs is the narrow filesystem abstraction the durable store
// runs on, split into its own leaf package so fault injectors
// (internal/faults) and the store (internal/durable) can share it
// without import cycles.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the durable store needs. The
// production implementation is OSFS; internal/faults wraps any FS with a
// deterministic fault injector (short writes, fsync errors, bit-flipped
// reads, a crash horizon) so chaos tests drive every WAL/snapshot failure
// path through the same code the real store runs.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names in dir, sorted lexicographically.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir flushes directory metadata (created/renamed entries) so a
	// crash cannot forget a rename that already returned.
	SyncDir(dir string) error
}

// File is a writable file handle with explicit durability control.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close closes the handle (without an implicit Sync).
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// ReadDir implements FS: regular-file names only, sorted.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS. Directory fsync is best-effort: some platforms
// and filesystems reject it, and the store's correctness never depends on
// it (recovery tolerates a missing tail), so errors from the sync itself
// are dropped.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}
