// Package durable is the persistent workload store (DESIGN.md §14): an
// append-only write-ahead log of observed query batches plus periodic
// checksummed snapshots of incremental-compression state, so a tuning
// session survives process death and a million-query history is a disk
// problem, not a RAM problem.
//
// Layout of a store directory:
//
//	wal-<firstLSN>.log   append-only segments of CRC32C-framed batch records
//	snap-<lsn>.snap      atomic snapshots (interner dictionary, weighted
//	                     pool, seen count) covering the log through <lsn>
//
// Crash recovery loads the newest valid snapshot and replays the bounded
// WAL suffix through core.Incremental. Torn, truncated, or bit-flipped
// records are detected by checksum and recovery stops cleanly at the
// last good record — never a panic, never an error for corruption. A
// fault-free log recovers byte-identically to the never-crashed
// in-memory run: the snapshot carries the feature-interner dictionary in
// exact ID order and the pool's accumulated weights, and replay re-folds
// the same batches at the same boundaries, so every downstream
// merge-join accumulates in the same order (pinned by the oracle tests).
package durable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"isum/internal/catalog"
	"isum/internal/core"
	"isum/internal/features"
	"isum/internal/telemetry"
	"isum/internal/vfs"
	"isum/internal/workload"
)

// SyncPolicy controls when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs the segment after every appended record — the
	// default: an Observe that returned has its batch on stable storage.
	SyncAlways SyncPolicy = iota
	// SyncRotate fsyncs only when a segment is sealed (rotation, Close).
	// A crash can lose the tail of the current segment; recovery keeps
	// the durable prefix.
	SyncRotate
	// SyncNever never fsyncs; the OS decides. Fastest, weakest.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values always/rotate/never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "rotate":
		return SyncRotate, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, rotate, or never)", s)
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncRotate:
		return "rotate"
	case SyncNever:
		return "never"
	default:
		return "always"
	}
}

// Options configure a durable store.
type Options struct {
	// Dir is the store directory (created if missing by Open).
	Dir string
	// Catalog is the schema the logged queries are analysed against; it
	// must match the catalog of the original session or replayed queries
	// will not re-analyse identically.
	Catalog *catalog.Catalog
	// Compressor configures the incremental recompression (typically
	// core.DefaultOptions()). Its Interner field is owned by the store —
	// any caller-set value is replaced by the store's persistent
	// dictionary.
	Compressor core.Options
	// PoolSize is k, the bounded number of weighted representatives
	// carried across batches (minimum 1).
	PoolSize int
	// Fsync is the WAL durability policy (default SyncAlways).
	Fsync SyncPolicy
	// SegmentBytes rotates the WAL once a segment exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// SnapshotEvery writes a snapshot after this many observed batches
	// (0 = only on Close/WriteSnapshot).
	SnapshotEvery int
	// FS overrides the filesystem (default vfs.OSFS{}); chaos tests inject
	// a deterministic fault filesystem here.
	FS vfs.FS
	// Telemetry receives the durable/* counters and gauges; nil disables
	// instrumentation at zero cost.
	Telemetry *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FS == nil {
		out.FS = vfs.OSFS{}
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	if out.PoolSize < 1 {
		out.PoolSize = 1
	}
	return out
}

// RecoveryInfo reports what recovery found and did.
type RecoveryInfo struct {
	// SnapshotLSN is the LSN covered by the loaded snapshot (0 = none).
	SnapshotLSN uint64
	// SnapshotsSkipped counts snapshots that failed validation and were
	// passed over for an older one.
	SnapshotsSkipped int
	// Replayed counts WAL records applied after the snapshot.
	Replayed int
	// CorruptSkipped counts records dropped at a corrupt or torn tail.
	CorruptSkipped int
	// LSN is the last applied batch LSN; new appends continue at LSN+1.
	LSN uint64
	// Seen and PoolLen describe the recovered state.
	Seen    int
	PoolLen int
	// Partial marks a recovery cut short by context cancellation: the
	// state is a valid prefix, but Open refuses to append after one.
	Partial bool
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// storeTel bundles the durable/* metrics; all handles are nil-safe.
type storeTel struct {
	appended    *telemetry.Counter
	replayed    *telemetry.Counter
	corruptRecs *telemetry.Counter
	segments    *telemetry.Counter
	snapWritten *telemetry.Counter
	snapLoaded  *telemetry.Counter
	snapCorrupt *telemetry.Counter
	lsn         *telemetry.Gauge
	recoverNs   *telemetry.Gauge
}

func newStoreTel(reg *telemetry.Registry) *storeTel {
	return &storeTel{
		appended:    reg.Counter("durable/wal/appended"),
		replayed:    reg.Counter("durable/wal/replayed"),
		corruptRecs: reg.Counter("durable/wal/corrupt_skipped"),
		segments:    reg.Counter("durable/wal/segments"),
		snapWritten: reg.Counter("durable/snapshot/written"),
		snapLoaded:  reg.Counter("durable/snapshot/loaded"),
		snapCorrupt: reg.Counter("durable/snapshot/corrupt_skipped"),
		lsn:         reg.Gauge("durable/lsn"),
		recoverNs:   reg.Gauge("durable/recover/nanos"),
	}
}

// Store is a durable incremental-compression session: Observe appends
// the batch to the WAL, folds it into the bounded pool, and snapshots
// periodically. One writer per directory; methods are serialised by an
// internal mutex, but the single-writer invariant across processes is
// the caller's to keep.
type Store struct {
	mu        sync.Mutex
	opts      Options
	fs        vfs.FS
	ic        *core.Incremental
	in        *features.Interner
	w         *walWriter
	lsn       uint64
	sinceSnap int
	tel       *storeTel
	closed    bool
}

// recovered is the outcome of recoverState: the rebuilt session plus the
// repair plan Open needs to linearise the log again after a corrupt tail.
type recovered struct {
	ic   *core.Incremental
	in   *features.Interner
	info *RecoveryInfo
	// stopSeg/stopGood identify the segment (and the offset past its
	// last good record) where replay stopped on corruption; laterSegs
	// are the now-unreachable segments after it. Empty when the whole
	// log validated.
	stopSeg   string
	stopGood  int64
	laterSegs []string
}

// Recover rebuilds the compression state from a store directory without
// opening it for writing — the read-only inspection path. Corruption is
// never an error: a torn or bit-flipped tail yields the last-good
// prefix, a missing directory yields an empty session. Cancellation of
// ctx stops replay at a batch boundary with Partial set (the anytime
// contract); the error is reserved for real failures (I/O errors on
// intact files, contained worker panics during recompression).
func Recover(ctx context.Context, opts Options) (*core.Incremental, *RecoveryInfo, error) {
	o := opts.withDefaults()
	rec, err := recoverState(ctx, o)
	if err != nil {
		return nil, nil, err
	}
	return rec.ic, rec.info, nil
}

// Open recovers the directory's state and opens it for appending: the
// writer continues at the recovered LSN in a fresh segment, after
// repairing any corrupt tail (truncating the bad suffix and removing
// unreachable later segments) so the log reads linearly again. Unlike
// Recover, Open fails on a cancelled context — appending after a partial
// replay would fork the LSN sequence.
func Open(ctx context.Context, opts Options) (*Store, *RecoveryInfo, error) {
	o := opts.withDefaults()
	if o.Dir == "" {
		return nil, nil, fmt.Errorf("durable: empty store directory")
	}
	if o.Catalog == nil {
		return nil, nil, fmt.Errorf("durable: nil catalog")
	}
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		return nil, nil, fmt.Errorf("durable: creating store dir: %w", err)
	}
	rec, err := recoverState(ctx, o)
	if err != nil {
		return nil, nil, err
	}
	if rec.info.Partial {
		return nil, nil, fmt.Errorf("durable: recovery interrupted at LSN %d: %w", rec.info.LSN, ctx.Err())
	}
	if err := repairLog(o.FS, o.Dir, rec); err != nil {
		return nil, nil, err
	}
	tel := newStoreTel(o.Telemetry)
	w, err := openWalWriter(o.FS, o.Dir, rec.info.LSN+1, o.Fsync, o.SegmentBytes,
		&counterHandle{inc: func() { tel.segments.Inc() }})
	if err != nil {
		return nil, nil, err
	}
	st := &Store{
		opts: o,
		fs:   o.FS,
		ic:   rec.ic,
		in:   rec.in,
		w:    w,
		lsn:  rec.info.LSN,
		tel:  tel,
	}
	tel.lsn.Set(float64(st.lsn))
	st.gc()
	return st, rec.info, nil
}

// recoverState does the shared recovery work: newest valid snapshot,
// bounded replay, repair plan.
func recoverState(ctx context.Context, o Options) (*recovered, error) {
	start := time.Now() //lint:allow determinism recovery wall-clock reporting only; recovered state never reads the clock
	tel := newStoreTel(o.Telemetry)
	info := &RecoveryInfo{}
	names, err := o.FS.ReadDir(o.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			names = nil
		} else {
			return nil, fmt.Errorf("durable: listing store dir: %w", err)
		}
	}
	var snaps []string
	var segs []string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps = append(snaps, n)
		}
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	// Newest snapshot first; fall through to older ones (and finally to
	// an empty base) when validation or state rebuilding fails.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	in := features.NewInterner()
	var pool *workload.Workload
	for _, name := range snaps {
		st, rerr := readSnapshot(o.FS, o.Dir, name)
		if rerr != nil {
			tel.snapCorrupt.Inc()
			info.SnapshotsSkipped++
			continue
		}
		cand := features.NewInterner()
		if err := cand.RestoreKeys(st.keys); err != nil {
			tel.snapCorrupt.Inc()
			info.SnapshotsSkipped++
			continue
		}
		p, perr := buildPool(o.Catalog, st.pool)
		if perr != nil {
			tel.snapCorrupt.Inc()
			info.SnapshotsSkipped++
			continue
		}
		in = cand
		pool = p
		info.SnapshotLSN = st.lsn
		info.LSN = st.lsn
		info.Seen = int(st.seen)
		tel.snapLoaded.Inc()
		break
	}
	copts := o.Compressor
	copts.Interner = in
	ic := core.RestoreIncremental(o.Catalog, copts, o.PoolSize, pool, info.Seen)

	rec := &recovered{ic: ic, in: in, info: info}
	sort.Slice(segs, func(i, j int) bool {
		a, _ := parseSegName(segs[i])
		b, _ := parseSegName(segs[j])
		return a < b
	})
	lastApplied := info.SnapshotLSN
	for i, name := range segs {
		// Bounded replay: a segment is skippable when the next segment
		// starts at or before the first LSN we still need.
		if i+1 < len(segs) {
			next, _ := parseSegName(segs[i+1])
			if next <= lastApplied+1 {
				continue
			}
		}
		stop := false
		var replayErr error
		good, corrupt, serr := scanSegment(o.FS, filepath.Join(o.Dir, name), func(r segRecord) bool {
			if r.lsn <= lastApplied {
				return true
			}
			if r.lsn != lastApplied+1 {
				// Sequence break: unreachable history — stop like corruption.
				stop = true
				return false
			}
			if ctx.Err() != nil {
				info.Partial = true
				return false
			}
			batch, berr := buildBatch(o.Catalog, r.queries)
			if berr != nil {
				stop = true
				return false
			}
			res, oerr := ic.ObserveContext(ctx, batch)
			if oerr != nil {
				replayErr = oerr
				return false
			}
			if res.Partial {
				// Cancelled mid-recompress: the fold kept the previous
				// pool or a valid best-so-far; stop without counting the
				// record as applied so Open refuses to fork the log.
				info.Partial = true
				return false
			}
			lastApplied = r.lsn
			info.Replayed++
			tel.replayed.Inc()
			return true
		})
		if serr != nil {
			return nil, fmt.Errorf("durable: reading segment %s: %w", name, serr)
		}
		if replayErr != nil {
			return nil, fmt.Errorf("durable: replaying segment %s: %w", name, replayErr)
		}
		if corrupt || stop {
			info.CorruptSkipped++
			tel.corruptRecs.Inc()
			rec.stopSeg = name
			rec.stopGood = good
			rec.laterSegs = append(rec.laterSegs, segs[i+1:]...)
			break
		}
		if info.Partial {
			break
		}
	}
	info.LSN = lastApplied
	info.Seen = ic.Seen()
	info.PoolLen = ic.Pool().Len()
	info.Elapsed = time.Since(start)
	tel.lsn.Set(float64(info.LSN))
	tel.recoverNs.Set(float64(info.Elapsed.Nanoseconds()))
	return rec, nil
}

// buildQuery re-analyses one persisted query against the catalog,
// restoring its exact cost and weight. Invalid costs/weights mean the
// record never came from a healthy writer.
func buildQuery(cat *catalog.Catalog, r queryRec) (*workload.Query, error) {
	if math.IsNaN(r.cost) || math.IsInf(r.cost, 0) || r.cost < 0 {
		return nil, fmt.Errorf("durable: invalid cost %v", r.cost)
	}
	if math.IsNaN(r.weight) || math.IsInf(r.weight, 0) || r.weight < 0 {
		return nil, fmt.Errorf("durable: invalid weight %v", r.weight)
	}
	q, err := workload.NewQuery(cat, r.id, r.text)
	if err != nil {
		return nil, err
	}
	q.Cost = r.cost
	if r.weight > 0 {
		q.Weight = r.weight
	}
	return q, nil
}

func buildBatch(cat *catalog.Catalog, recs []queryRec) ([]*workload.Query, error) {
	out := make([]*workload.Query, 0, len(recs))
	for _, r := range recs {
		q, err := buildQuery(cat, r)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

func buildPool(cat *catalog.Catalog, recs []queryRec) (*workload.Workload, error) {
	qs, err := buildBatch(cat, recs)
	if err != nil {
		return nil, err
	}
	return &workload.Workload{Catalog: cat, Queries: qs}, nil
}

// repairLog truncates a corrupt tail in place (good prefix rewritten via
// a temp file and atomic rename) and removes segments made unreachable
// by the corruption, so the log reads linearly for every future
// recovery. Without this, records appended after the crash would sit
// beyond a permanently corrupt record and be silently lost.
func repairLog(fs vfs.FS, dir string, rec *recovered) error {
	if rec.stopSeg == "" {
		return nil
	}
	path := filepath.Join(dir, rec.stopSeg)
	if rec.stopGood <= headerSize {
		if err := fs.Remove(path); err != nil {
			return fmt.Errorf("durable: removing corrupt segment %s: %w", rec.stopSeg, err)
		}
	} else {
		rc, err := fs.Open(path)
		if err != nil {
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		prefix := make([]byte, rec.stopGood)
		_, err = io.ReadFull(rc, prefix)
		_ = rc.Close()
		if err != nil {
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		tmp := path + ".tmp"
		f, err := fs.Create(tmp)
		if err != nil {
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		if _, err := f.Write(prefix); err != nil {
			_ = f.Close()
			_ = fs.Remove(tmp)
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = fs.Remove(tmp)
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		if err := f.Close(); err != nil {
			_ = fs.Remove(tmp)
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
		if err := fs.Rename(tmp, path); err != nil {
			_ = fs.Remove(tmp)
			return fmt.Errorf("durable: repairing %s: %w", rec.stopSeg, err)
		}
	}
	for _, name := range rec.laterSegs {
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("durable: removing unreachable segment %s: %w", name, err)
		}
	}
	return fs.SyncDir(dir)
}

// Observe durably logs a batch and folds it into the pool. The batch is
// on stable storage iff the append (and, under SyncAlways, its fsync)
// succeeded; on an append error nothing was folded, and because the
// failed record's bytes may or may not have reached the file, the WAL
// writer is poisoned — every later Observe fails too, and the session
// must be reopened, converging on whatever the log actually holds. A
// fold cancelled by ctx follows the anytime contract (valid best-so-far
// pool, Result.Partial, nil error). A snapshot error is reported but the
// batch itself is already durable in the WAL. A real fold failure
// (contained worker panic) leaves the record in the log but unapplied;
// reopening the store converges.
func (s *Store) Observe(ctx context.Context, batch []*workload.Query) (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("durable: store is closed")
	}
	if len(batch) == 0 {
		return &core.Result{}, nil
	}
	lsn, err := s.w.append(batch)
	if err != nil {
		return nil, err
	}
	res, err := s.ic.ObserveContext(ctx, batch)
	if err != nil {
		return nil, err
	}
	s.lsn = lsn
	s.tel.appended.Inc()
	s.tel.lsn.Set(float64(s.lsn))
	s.sinceSnap++
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if serr := s.writeSnapshotLocked(); serr != nil {
			return res, serr
		}
	}
	return res, nil
}

// Pool returns the current compressed pool (shared; treat as read-only).
func (s *Store) Pool() *workload.Workload {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ic.Pool()
}

// Seen returns the number of queries observed across all sessions.
func (s *Store) Seen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ic.Seen()
}

// LSN returns the last durably applied batch LSN.
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// WriteSnapshot forces a snapshot of the current state.
func (s *Store) WriteSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	return s.writeSnapshotLocked()
}

func (s *Store) writeSnapshotLocked() error {
	payload := encodeSnapshot(s.lsn, s.ic.Seen(), s.in, s.ic.Pool())
	if _, err := writeSnapshot(s.fs, s.opts.Dir, payload); err != nil {
		return err
	}
	s.tel.snapWritten.Inc()
	s.sinceSnap = 0
	s.gc()
	return nil
}

// gc removes snapshots beyond the two newest and WAL segments whose
// records are entirely covered by the oldest retained snapshot. Best
// effort: removal failures leave extra files, never a broken store.
func (s *Store) gc() {
	names, err := s.fs.ReadDir(s.opts.Dir)
	if err != nil {
		return
	}
	var snapLSNs []uint64
	for _, n := range names {
		if lsn, ok := parseSnapName(n); ok {
			snapLSNs = append(snapLSNs, lsn)
		}
	}
	if len(snapLSNs) == 0 {
		return
	}
	sort.Slice(snapLSNs, func(i, j int) bool { return snapLSNs[i] > snapLSNs[j] })
	const keep = 2
	cutoff := snapLSNs[0]
	if len(snapLSNs) > 1 {
		cutoff = snapLSNs[1]
	}
	for _, lsn := range snapLSNs {
		if lsn < cutoff {
			_ = s.fs.Remove(filepath.Join(s.opts.Dir, snapName(lsn)))
		}
	}
	var segFirst []uint64
	for _, n := range names {
		if first, ok := parseSegName(n); ok {
			segFirst = append(segFirst, first)
		}
	}
	sort.Slice(segFirst, func(i, j int) bool { return segFirst[i] < segFirst[j] })
	for i := 0; i+1 < len(segFirst); i++ {
		// Removable iff every record (LSNs [first, nextFirst)) is ≤ cutoff.
		if segFirst[i+1] <= cutoff+1 {
			_ = s.fs.Remove(filepath.Join(s.opts.Dir, segName(segFirst[i])))
		}
	}
}

// Close seals the WAL segment and, when periodic snapshots are enabled
// and batches arrived since the last one, writes a final snapshot so the
// next Open replays nothing.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if s.opts.SnapshotEvery > 0 && s.sinceSnap > 0 {
		if err := s.writeSnapshotLocked(); err != nil {
			firstErr = err
		}
	}
	if err := s.w.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
