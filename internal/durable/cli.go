package durable

import (
	"flag"
	"fmt"
)

// Flags is the durable-store CLI surface shared by the cmd/ binaries:
//
//	-wal-dir=<dir>       persist observed batches to a WAL + snapshots in
//	                     this directory; on start, recover the previous
//	                     session's state from it (empty = in-memory only)
//	-snapshot-every=<n>  write a snapshot every n observed batches
//	                     (0 = only at clean shutdown)
//	-fsync=<policy>      WAL durability: always | rotate | never
//
// Register the flags, then build Options with Build.
type Flags struct {
	Dir           string
	SnapshotEvery int
	Fsync         string
}

// Register installs the flags on fs (use flag.CommandLine in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "wal-dir", "",
		"durable store directory: WAL of observed batches + periodic snapshots, recovered on start (empty = in-memory only)")
	fs.IntVar(&f.SnapshotEvery, "snapshot-every", 8,
		"write a state snapshot every n observed batches (0 = only at clean shutdown)")
	fs.StringVar(&f.Fsync, "fsync", "always",
		"WAL fsync policy: always (per record), rotate (per segment), never")
}

// Enabled reports whether -wal-dir was given.
func (f *Flags) Enabled() bool { return f.Dir != "" }

// Build assembles store Options from the flags; the caller fills in the
// catalog, compressor options, and pool size.
func (f *Flags) Build() (Options, error) {
	policy, err := ParseSyncPolicy(f.Fsync)
	if err != nil {
		return Options{}, fmt.Errorf("-fsync: %w", err)
	}
	if f.SnapshotEvery < 0 {
		return Options{}, fmt.Errorf("-snapshot-every: must be >= 0, got %d", f.SnapshotEvery)
	}
	return Options{
		Dir:           f.Dir,
		Fsync:         policy,
		SnapshotEvery: f.SnapshotEvery,
	}, nil
}
