package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"isum/internal/features"
	"isum/internal/vfs"
	"isum/internal/workload"
)

// Snapshot file format (DESIGN.md §14):
//
//	magic "ISUMSNP1" (8) | version uint32 LE (4) | reserved (4)
//	payload length uint32 LE | CRC32C(payload) uint32 LE | payload
//
// payload:
//
//	uvarint lsn | uvarint seen
//	uvarint nkeys | nkeys × (uvarint len | key bytes)      — interner, ID order
//	uvarint npool | npool × query                          — accumulated weights
//
// Snapshots are named snap-<lsn hex16>.snap for the last WAL record they
// cover, written to a .tmp sibling, fsynced, and renamed into place, so
// a snapshot either exists completely or not at all. The whole payload
// is checksummed: recovery falls back to the next-older snapshot (and
// ultimately to a full WAL replay from LSN 0) when validation fails.

// snapState is the decoded compression state a snapshot carries.
type snapState struct {
	lsn  uint64
	seen uint64
	keys []string
	pool []queryRec
}

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSnapshot serialises the state carried by a snapshot: the LSN it
// covers, the observed-query count, the interner dictionary in exact ID
// order, and the pool queries with their accumulated weights.
func encodeSnapshot(lsn uint64, seen int, in *features.Interner, pool *workload.Workload) []byte {
	buf := make([]byte, 0, 1<<12)
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, uint64(seen))
	n := 0
	if in != nil {
		n = in.Len()
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for id := 0; id < n; id++ {
		k := in.Key(uint32(id))
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	var queries []*workload.Query
	if pool != nil {
		queries = pool.Queries
	}
	buf = binary.AppendUvarint(buf, uint64(len(queries)))
	for _, q := range queries {
		buf = appendQuery(buf, q.ID, q.Text, q.Cost, q.Weight)
	}
	return buf
}

// decodeSnapshot parses a snapshot payload; any truncation, trailing
// garbage, or impossible count yields errCorrupt, never a panic.
func decodeSnapshot(payload []byte) (*snapState, error) {
	c := &byteCursor{b: payload}
	st := &snapState{}
	st.lsn = c.uvarint()
	st.seen = c.uvarint()
	nkeys := c.uvarint()
	if c.bad || nkeys > maxRecordBytes {
		return nil, errCorrupt
	}
	st.keys = make([]string, 0, nkeys)
	for i := uint64(0); i < nkeys; i++ {
		k := string(c.bytes(c.uvarint()))
		if c.bad {
			return nil, errCorrupt
		}
		st.keys = append(st.keys, k)
	}
	npool := c.uvarint()
	if c.bad || npool > maxRecordBytes {
		return nil, errCorrupt
	}
	st.pool = make([]queryRec, 0, npool)
	for i := uint64(0); i < npool; i++ {
		q := readQuery(c)
		if c.bad {
			return nil, errCorrupt
		}
		st.pool = append(st.pool, q)
	}
	if c.off != len(payload) {
		return nil, errCorrupt
	}
	return st, nil
}

// writeSnapshot persists a snapshot atomically: full content to a .tmp
// file, fsync, close, rename into place, directory sync. On any error
// the .tmp is removed and no snapshot is visible.
func writeSnapshot(fs vfs.FS, dir string, payload []byte) (name string, err error) {
	st, derr := decodeSnapshot(payload)
	if derr != nil {
		return "", fmt.Errorf("durable: refusing to write undecodable snapshot: %w", derr)
	}
	name = snapName(st.lsn)
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("durable: creating snapshot: %w", err)
	}
	cleanup := func(e error) (string, error) {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return "", e
	}
	buf := fileHeader(snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)
	if _, err := f.Write(buf); err != nil {
		return cleanup(fmt.Errorf("durable: writing snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("durable: fsyncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return "", fmt.Errorf("durable: closing snapshot: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return "", fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("durable: syncing dir after snapshot: %w", err)
	}
	return name, nil
}

// readSnapshot loads and validates one snapshot file; corruption in any
// form (bad magic, short file, checksum mismatch, undecodable payload,
// LSN disagreeing with the file name) returns errCorrupt.
func readSnapshot(fs vfs.FS, dir, name string) (*snapState, error) {
	wantLSN, ok := parseSnapName(name)
	if !ok {
		return nil, errCorrupt
	}
	rc, err := fs.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(io.LimitReader(rc, maxRecordBytes+headerSize+frameSize+1))
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+frameSize {
		return nil, errCorrupt
	}
	if checkHeader(data[:headerSize], snapMagic) != nil {
		return nil, errCorrupt
	}
	length := binary.LittleEndian.Uint32(data[headerSize : headerSize+4])
	sum := binary.LittleEndian.Uint32(data[headerSize+4 : headerSize+8])
	payload := data[headerSize+frameSize:]
	if uint32(len(payload)) != length {
		return nil, errCorrupt
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, errCorrupt
	}
	st, derr := decodeSnapshot(payload)
	if derr != nil {
		return nil, errCorrupt
	}
	if st.lsn != wantLSN {
		return nil, errCorrupt
	}
	return st, nil
}
