package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"strconv"
	"strings"

	"isum/internal/vfs"
	"isum/internal/workload"
)

// WAL file format (DESIGN.md §14). Each segment is
//
//	header: magic "ISUMWAL1" (8) | version uint32 LE (4) | reserved (4)
//	records: [ length uint32 LE | CRC32C(payload) uint32 LE | payload ]*
//
// and each record payload is one observed batch:
//
//	uvarint lsn | uvarint count | count × query
//	query: uvarint id | uvarint len | text bytes | cost bits LE | weight bits LE
//
// Segments are named wal-<firstLSN hex16>.log so a directory listing
// orders them by position in the log; rotation closes the current
// segment once it crosses SegmentBytes and starts the next at the
// following LSN. The CRC is the corruption oracle: recovery stops at the
// first record whose frame, checksum, LSN sequence, or SQL payload fails
// to validate, keeping the last-good prefix (never a panic).
const (
	walMagic      = "ISUMWAL1"
	snapMagic     = "ISUMSNP1"
	formatVersion = 1
	headerSize    = 16
	frameSize     = 8
	// maxRecordBytes bounds a record frame so a corrupt length field
	// cannot drive a giant allocation.
	maxRecordBytes = 1 << 28
)

// castagnoli is the CRC32C table (the WAL/snapshot checksum polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt marks any frame-level validation failure during a segment
// scan: torn/truncated tails, checksum mismatches, impossible lengths,
// LSN sequence breaks, undecodable payloads. It is a recovery signal
// (stop at last-good), never surfaced to callers.
var errCorrupt = errors.New("durable: corrupt record")

// segName returns the segment file name for a first-LSN.
func segName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.log", firstLSN) }

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// fileHeader returns the 16-byte segment/snapshot header for a magic.
func fileHeader(magic string) []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, magic...)
	h = binary.LittleEndian.AppendUint32(h, formatVersion)
	h = binary.LittleEndian.AppendUint32(h, 0)
	return h
}

// checkHeader validates a 16-byte header against a magic.
func checkHeader(h []byte, magic string) error {
	if len(h) < headerSize || string(h[:8]) != magic {
		return fmt.Errorf("durable: bad magic (want %s)", magic)
	}
	if v := binary.LittleEndian.Uint32(h[8:12]); v != formatVersion {
		return fmt.Errorf("durable: format version %d (want %d)", v, formatVersion)
	}
	return nil
}

// appendQuery encodes one query into buf.
func appendQuery(buf []byte, id int, text string, cost, weight float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = binary.AppendUvarint(buf, uint64(len(text)))
	buf = append(buf, text...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cost))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(weight))
	return buf
}

// byteCursor decodes the uvarint/fixed64 stream of record and snapshot
// payloads, failing softly (corrupt flag, no panics) on truncation.
type byteCursor struct {
	b   []byte
	off int
	bad bool
}

func (c *byteCursor) uvarint() uint64 {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.bad = true
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) bytes(n uint64) []byte {
	if c.bad || n > uint64(len(c.b)-c.off) {
		c.bad = true
		return nil
	}
	out := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return out
}

func (c *byteCursor) fixed64() uint64 {
	if c.bad || len(c.b)-c.off < 8 {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// queryRec is the decoded form of one persisted query.
type queryRec struct {
	id     int
	text   string
	cost   float64
	weight float64
}

// readQuery decodes one query from the cursor.
func readQuery(c *byteCursor) queryRec {
	id := c.uvarint()
	text := string(c.bytes(c.uvarint()))
	cost := math.Float64frombits(c.fixed64())
	weight := math.Float64frombits(c.fixed64())
	return queryRec{id: int(id), text: text, cost: cost, weight: weight}
}

// encodeBatch builds one WAL record payload for a batch at lsn.
func encodeBatch(lsn uint64, batch []*workload.Query) []byte {
	buf := make([]byte, 0, 64+32*len(batch))
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for _, q := range batch {
		buf = appendQuery(buf, q.ID, q.Text, q.Cost, q.Weight)
	}
	return buf
}

// decodeBatch parses a WAL record payload. A short or over-long payload
// returns errCorrupt: the CRC already matched, so this only fires on
// encoder/decoder version skew or a checksum collision — either way the
// record is unusable and recovery must stop at the previous one.
func decodeBatch(payload []byte) (lsn uint64, queries []queryRec, err error) {
	c := &byteCursor{b: payload}
	lsn = c.uvarint()
	n := c.uvarint()
	if c.bad || n > maxRecordBytes {
		return 0, nil, errCorrupt
	}
	queries = make([]queryRec, 0, n)
	for i := uint64(0); i < n; i++ {
		q := readQuery(c)
		if c.bad {
			return 0, nil, errCorrupt
		}
		queries = append(queries, q)
	}
	if c.off != len(payload) {
		return 0, nil, errCorrupt
	}
	return lsn, queries, nil
}

// walWriter appends framed records to the current segment, rotating at
// SegmentBytes. One writer per store; the store serialises access.
type walWriter struct {
	fs      vfs.FS
	dir     string
	policy  SyncPolicy
	segSize int64

	f       vfs.File
	name    string
	size    int64
	nextLSN uint64
	scratch []byte
	// failed poisons the writer after any append error: the failed
	// record's bytes may or may not have reached the file, so reusing or
	// skipping its LSN would fork the in-memory state from what replay
	// will reconstruct. The only safe continuation is a fresh Open, which
	// converges on the log's actual contents.
	failed error

	rotations *counterHandle
}

// counterHandle decouples wal.go from the telemetry struct (nil-safe).
type counterHandle struct{ inc func() }

func (c *counterHandle) Inc() {
	if c != nil && c.inc != nil {
		c.inc()
	}
}

// openWalWriter starts a fresh segment whose first record will be
// nextLSN. A new segment per process lifetime keeps append-only
// semantics simple: a crashed writer's torn tail is repaired on the next
// Open, never overwritten in place.
func openWalWriter(fs vfs.FS, dir string, nextLSN uint64, policy SyncPolicy, segSize int64, rotations *counterHandle) (*walWriter, error) {
	w := &walWriter{fs: fs, dir: dir, policy: policy, segSize: segSize, nextLSN: nextLSN, rotations: rotations}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) openSegment() error {
	name := filepath.Join(w.dir, segName(w.nextLSN))
	f, err := w.fs.Create(name)
	if err != nil {
		return fmt.Errorf("durable: creating segment: %w", err)
	}
	if _, err := f.Write(fileHeader(walMagic)); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: writing segment header: %w", err)
	}
	w.f, w.name, w.size = f, name, headerSize
	w.rotations.Inc()
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("durable: syncing dir: %w", err)
	}
	return nil
}

// append frames and writes one batch record, advancing the LSN only on
// full success. The frame and payload go down in a single Write so an
// injected short write tears the record exactly as a crashed kernel
// would. Returns the LSN the record was assigned.
func (w *walWriter) append(batch []*workload.Query) (uint64, error) {
	if w.failed != nil {
		return 0, fmt.Errorf("durable: WAL writer poisoned by earlier append failure (reopen the store to recover): %w", w.failed)
	}
	lsn := w.nextLSN
	payload := encodeBatch(lsn, batch)
	rec := w.scratch[:0]
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)
	w.scratch = rec[:0]

	if w.size > headerSize && w.size+int64(len(rec)) > w.segSize {
		if err := w.rotate(); err != nil {
			w.failed = err
			return 0, err
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		w.failed = err
		return 0, fmt.Errorf("durable: appending record %d: %w", lsn, err)
	}
	w.size += int64(len(rec))
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			// A failed fsync leaves the page-cache state unknowable
			// (fsyncgate): the record may or may not survive a crash, so
			// its LSN can be neither reused nor skipped.
			w.failed = err
			return 0, fmt.Errorf("durable: fsync after record %d: %w", lsn, err)
		}
	}
	w.nextLSN++
	return lsn, nil
}

// rotate seals the current segment (fsync unless SyncNever) and opens
// the next one.
func (w *walWriter) rotate() error {
	if w.policy != SyncNever {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: fsync at rotation: %w", err)
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: closing segment: %w", err)
	}
	return w.openSegment()
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	var firstErr error
	if w.policy != SyncNever {
		firstErr = w.f.Sync()
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	w.f = nil
	return firstErr
}

// segRecord is one validated record yielded by a segment scan.
type segRecord struct {
	lsn     uint64
	queries []queryRec
	// end is the byte offset just past this record in the segment.
	end int64
}

// scanSegment reads a segment and streams validated records to fn until
// the segment ends, a record fails validation, or fn returns false. It
// returns the offset just past the last valid record (headerSize for a
// segment with none), whether the scan stopped on a corrupt/torn record,
// and an error only for I/O failures on the underlying vfs.FS — corruption
// is a result, not an error.
func scanSegment(fs vfs.FS, name string, fn func(segRecord) bool) (good int64, corrupt bool, err error) {
	rc, err := fs.Open(name)
	if err != nil {
		return 0, false, err
	}
	defer rc.Close()
	br := bufio.NewReaderSize(rc, 1<<16)

	header := make([]byte, headerSize)
	if _, err := io.ReadFull(br, header); err != nil {
		// Too short to even hold a header: treat as a torn creat.
		return 0, true, nil
	}
	if checkHeader(header, walMagic) != nil {
		return 0, true, nil
	}
	good = headerSize
	frame := make([]byte, frameSize)
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			if errors.Is(err, io.EOF) {
				return good, false, nil // clean end of segment
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return good, true, nil // torn frame
			}
			return good, false, err
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordBytes {
			return good, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return good, true, nil // torn payload
			}
			return good, false, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return good, true, nil // bit rot or torn overwrite
		}
		lsn, queries, derr := decodeBatch(payload)
		if derr != nil {
			return good, true, nil
		}
		// good advances only once fn accepts the record: a rejected record
		// (LSN sequence break, unusable payload) must stay beyond the
		// good offset so tail repair truncates it rather than entombing
		// it in front of future appends.
		end := good + frameSize + int64(length)
		if !fn(segRecord{lsn: lsn, queries: queries, end: end}) {
			return good, false, nil
		}
		good = end
	}
}
