package durable

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"isum/internal/catalog"
	"isum/internal/core"
	"isum/internal/features"
	"isum/internal/vfs"
	"isum/internal/workload"
)

// fuzzCatalog is a one-table schema for replaying fuzzed WAL bytes.
func fuzzCatalog() *catalog.Catalog {
	cat := catalog.New()
	tb := catalog.NewTable("t", 100000)
	tb.AddColumn(&catalog.Column{Name: "a", Type: catalog.TypeInt, DistinctCount: 1000, Min: 0, Max: 999,
		Hist: catalog.SyntheticHistogram(0, 999, 100000, 1000, 20, 0)})
	cat.AddTable(tb)
	return cat
}

// seedSegment builds a valid two-record segment so the fuzzer starts
// from structurally interesting input.
func seedSegment() []byte {
	buf := fileHeader(walMagic)
	for lsn := uint64(1); lsn <= 2; lsn++ {
		payload := binary.AppendUvarint(nil, lsn)
		payload = binary.AppendUvarint(payload, 1)
		payload = appendQuery(payload, int(lsn), "SELECT a FROM t WHERE a = 1", 10, 1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
		buf = append(buf, payload...)
	}
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to the full recovery path as a WAL
// segment: whatever the bytes, recovery must return a valid (possibly
// empty) state — never panic, never error on mere corruption.
func FuzzWALReplay(f *testing.F) {
	f.Add(seedSegment())
	f.Add(seedSegment()[:headerSize+3]) // torn frame
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})
	cat := fuzzCatalog()
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		ic, info, err := Recover(context.Background(), Options{
			Dir: dir, Catalog: cat, Compressor: core.DefaultOptions(), PoolSize: 2,
		})
		if err != nil {
			t.Fatalf("corruption must not be an error: %v", err)
		}
		if ic == nil || ic.Pool() == nil {
			t.Fatal("recovery must always return a usable state")
		}
		if int(info.LSN) < info.Replayed {
			t.Fatalf("inconsistent info: %+v", info)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder (and
// the framed on-disk reader): corrupt input must yield errCorrupt, never
// a panic or a wild allocation.
func FuzzSnapshotDecode(f *testing.F) {
	in := features.NewInterner()
	in.AddKeys([]string{"t.a", "t.b"})
	w := &workload.Workload{}
	f.Add(encodeSnapshot(7, 42, in, w))
	f.Add(encodeSnapshot(0, 0, nil, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		st, err := decodeSnapshot(payload)
		if err == nil {
			// Valid payloads must round-trip through the framed file form.
			dir := t.TempDir()
			name, werr := writeSnapshot(vfs.OSFS{}, dir, payload)
			if werr != nil {
				t.Fatalf("re-writing a decodable snapshot: %v", werr)
			}
			back, rerr := readSnapshot(vfs.OSFS{}, dir, name)
			if rerr != nil {
				t.Fatalf("re-reading a written snapshot: %v", rerr)
			}
			if back.lsn != st.lsn || back.seen != st.seen || len(back.keys) != len(st.keys) || len(back.pool) != len(st.pool) {
				t.Fatal("snapshot round-trip changed state")
			}
		}
	})
}
