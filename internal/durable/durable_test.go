package durable_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isum/internal/catalog"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/durable"
	"isum/internal/faults"
	"isum/internal/workload"
)

// testCatalog mirrors the two-table schema the core tests compress.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	o := catalog.NewTable("orders", 1000000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1000000, Min: 1, Max: 1000000,
		Hist: catalog.SyntheticHistogram(1, 1000000, 1000000, 1000000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 1000000, 100000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 900000, Min: 1, Max: 500000,
		Hist: catalog.SyntheticHistogram(1, 500000, 1000000, 900000, 40, 0)})
	cat.AddTable(o)
	c := catalog.NewTable("customer", 100000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 100000, 100000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 100000, 25, 25, 0)})
	cat.AddTable(c)
	return cat
}

// testBatches builds a mixed workload with costs filled and splits it
// into batches of three — the stream a durable session observes.
func testBatches(t *testing.T, cat *catalog.Catalog) [][]*workload.Query {
	t.Helper()
	var sqls []string
	for i := 0; i < 6; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", 100+i))
	}
	for i := 0; i < 6; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT c_custkey FROM customer WHERE c_nationkey = %d", i))
	}
	for i := 0; i < 3; i++ {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = %d", i))
	}
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(cat).FillCosts(w)
	var batches [][]*workload.Query
	for i := 0; i < len(w.Queries); i += 3 {
		end := i + 3
		if end > len(w.Queries) {
			end = len(w.Queries)
		}
		batches = append(batches, w.Queries[i:end])
	}
	return batches
}

// oraclePools folds the batches through a plain in-memory Incremental,
// returning the pool after each prefix (index m = pool after m batches).
func oraclePools(cat *catalog.Catalog, batches [][]*workload.Query, k int) []*workload.Workload {
	ic := core.NewIncremental(cat, core.DefaultOptions(), k)
	pools := []*workload.Workload{ic.Pool()}
	for _, b := range batches {
		ic.Observe(b)
		pools = append(pools, ic.Pool())
	}
	return pools
}

// samePool asserts byte-identical pools: same queries in the same order
// with bit-equal costs and accumulated weights.
func samePool(t *testing.T, got, want *workload.Workload, msg string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: pool len %d, want %d", msg, got.Len(), want.Len())
	}
	for i := range want.Queries {
		g, w := got.Queries[i], want.Queries[i]
		if g.ID != w.ID || g.Text != w.Text {
			t.Fatalf("%s: query %d = (%d, %q), want (%d, %q)", msg, i, g.ID, g.Text, w.ID, w.Text)
		}
		if math.Float64bits(g.Cost) != math.Float64bits(w.Cost) {
			t.Fatalf("%s: query %d cost %v != %v", msg, i, g.Cost, w.Cost)
		}
		if math.Float64bits(g.Weight) != math.Float64bits(w.Weight) {
			t.Fatalf("%s: query %d weight %v != %v", msg, i, g.Weight, w.Weight)
		}
	}
}

func storeOpts(cat *catalog.Catalog, dir string, k int) durable.Options {
	return durable.Options{
		Dir:        dir,
		Catalog:    cat,
		Compressor: core.DefaultOptions(),
		PoolSize:   k,
	}
}

// A clean session must recover byte-identically to the never-crashed
// in-memory run — the determinism pin the whole design hangs on.
func TestStoreRoundTrip(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	opts := storeOpts(cat, dir, 4)
	opts.SnapshotEvery = 2
	st, info, err := durable.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN != 0 || info.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	total := 0
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
		total += len(b)
	}
	samePool(t, st.Pool(), pools[len(batches)], "live store")
	if st.Seen() != total {
		t.Fatalf("seen = %d, want %d", st.Seen(), total)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ic, rinfo, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	samePool(t, ic.Pool(), pools[len(batches)], "recovered")
	if ic.Seen() != total {
		t.Fatalf("recovered seen = %d, want %d", ic.Seen(), total)
	}
	if rinfo.LSN != uint64(len(batches)) {
		t.Fatalf("recovered LSN = %d, want %d", rinfo.LSN, len(batches))
	}
	if rinfo.SnapshotLSN == 0 {
		t.Fatal("expected a snapshot to cover the clean shutdown")
	}
	if rinfo.CorruptSkipped != 0 || rinfo.Partial {
		t.Fatalf("clean log flagged: %+v", rinfo)
	}
}

func TestRecoverMissingDir(t *testing.T) {
	cat := testCatalog()
	ic, info, err := durable.Recover(context.Background(),
		storeOpts(cat, filepath.Join(t.TempDir(), "never-created"), 4))
	if err != nil {
		t.Fatal(err)
	}
	if ic.Pool().Len() != 0 || ic.Seen() != 0 || info.LSN != 0 {
		t.Fatalf("missing dir should recover empty, got %+v", info)
	}
}

// Kill the writer at every record boundary and mid-record, then recover:
// the store must come back exactly as the in-memory oracle after the
// batches that fully persisted, and the torn tail must be skipped
// cleanly — never a panic, never an error.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	// Reference run: record the byte offset after each durable append.
	ref := faults.NewFaultyFS(nil, faults.FSConfig{}, nil)
	opts := storeOpts(cat, t.TempDir(), 4)
	opts.FS = ref
	st, _, err := durable.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int64
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, ref.Written())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash points: exactly at each boundary (batch m durable, nothing of
	// m+1), a torn frame (+5 bytes), and a torn payload (+12 bytes).
	type crash struct {
		limit int64
		want  int // batches expected to survive
	}
	var crashes []crash
	for m, b := range boundaries {
		crashes = append(crashes, crash{b, m + 1})
		if m+1 < len(batches) {
			crashes = append(crashes, crash{b + 5, m + 1}, crash{b + 12, m + 1})
		}
	}
	for _, c := range crashes {
		dir := t.TempDir()
		ffs := faults.NewFaultyFS(nil, faults.FSConfig{WriteLimit: c.limit}, nil)
		copts := storeOpts(cat, dir, 4)
		copts.FS = ffs
		st, _, err := durable.Open(ctx, copts)
		if err != nil {
			t.Fatalf("limit %d: open: %v", c.limit, err)
		}
		survived := 0
		for _, b := range batches {
			if _, err := st.Observe(ctx, b); err != nil {
				break
			}
			survived++
		}
		// No Close: the process "died". Recover from the real files.
		ic, info, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
		if err != nil {
			t.Fatalf("limit %d: recover: %v", c.limit, err)
		}
		if int(info.LSN) != c.want {
			t.Fatalf("limit %d: recovered LSN %d, want %d (writer survived %d)",
				c.limit, info.LSN, c.want, survived)
		}
		samePool(t, ic.Pool(), pools[c.want], fmt.Sprintf("limit %d", c.limit))
	}
}

// After a mid-record crash, Open must repair the torn tail and continue
// the session; the final state must equal the oracle over all batches.
func TestCrashThenContinue(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	// Learn the second batch boundary, then crash 12 bytes into record 3.
	ref := faults.NewFaultyFS(nil, faults.FSConfig{}, nil)
	opts := storeOpts(cat, t.TempDir(), 4)
	opts.FS = ref
	st, _, err := durable.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b2 int64
	for i := 0; i < 2; i++ {
		if _, err := st.Observe(ctx, batches[i]); err != nil {
			t.Fatal(err)
		}
		b2 = ref.Written()
	}
	_ = st.Close()

	dir := t.TempDir()
	ffs := faults.NewFaultyFS(nil, faults.FSConfig{WriteLimit: b2 + 12}, nil)
	copts := storeOpts(cat, dir, 4)
	copts.FS = ffs
	st, _, err = durable.Open(ctx, copts)
	if err != nil {
		t.Fatal(err)
	}
	crashed := -1
	for i, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			crashed = i
			break
		}
	}
	if crashed != 2 {
		t.Fatalf("crash at batch %d, want 2", crashed)
	}

	// Reopen for real: repair + replay, then feed the remaining batches.
	st2, info, err := durable.Open(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN != 2 || info.CorruptSkipped != 1 {
		t.Fatalf("repair info %+v, want LSN 2 with one skipped record", info)
	}
	for _, b := range batches[2:] {
		if _, err := st2.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	ic, _, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	samePool(t, ic.Pool(), pools[len(batches)], "continued session")
}

// A corrupt newest snapshot must fall back to an older one (or a full
// replay) and still recover the exact state.
func TestSnapshotFallback(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	opts := storeOpts(cat, dir, 4)
	opts.SnapshotEvery = 1
	st, _, err := durable.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// GC keeps the store bounded: at most two snapshots survive.
	var snaps []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("snapshot GC kept %d files: %v", len(snaps), snaps)
	}

	// Flip one payload byte in the newest snapshot.
	newest := filepath.Join(dir, snaps[len(snaps)-1])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ic, info, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotsSkipped != 1 {
		t.Fatalf("skipped %d snapshots, want 1", info.SnapshotsSkipped)
	}
	samePool(t, ic.Pool(), pools[len(batches)], "snapshot fallback")
}

// Garbage appended to the live segment — the classic torn tail — is
// skipped; Open then repairs it so the next session's appends land
// beyond a clean tail.
func TestTornTailRepair(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	st, _, err := durable.Open(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:3] {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99\x99torn tail garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ic, info, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN != 3 || info.CorruptSkipped != 1 {
		t.Fatalf("torn tail info %+v", info)
	}
	samePool(t, ic.Pool(), pools[3], "torn tail")

	st2, _, err := durable.Open(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[3:] {
		if _, err := st2.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	_ = st2.Close()
	ic, _, err = durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	samePool(t, ic.Pool(), pools[len(batches)], "after repair")
}

// Silent single-bit corruption on the read path: recovery must stop at
// the checksum failure and return a valid oracle prefix — never panic,
// never error.
func TestBitFlipRecoveryIsPrefix(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	st, _, err := durable.Open(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.Close()

	for seed := int64(1); seed <= 8; seed++ {
		opts := storeOpts(cat, dir, 4)
		opts.FS = faults.NewFaultyFS(nil, faults.FSConfig{Seed: seed, FlipBitRate: 0.3}, nil)
		ic, info, err := durable.Recover(ctx, opts)
		if err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}
		m := int(info.LSN)
		if m > len(batches) {
			t.Fatalf("seed %d: recovered LSN %d beyond log", seed, m)
		}
		samePool(t, ic.Pool(), pools[m], fmt.Sprintf("seed %d prefix %d", seed, m))
	}
}

// An injected fsync failure poisons the session (the failed record's
// durability is unknowable — fsyncgate), every later Observe fails, and
// reopening converges on what the log actually holds: the applied
// prefix, possibly plus the ambiguous batch.
func TestSyncErrorPoisonsWriter(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	opts := storeOpts(cat, dir, 4)
	opts.FS = faults.NewFaultyFS(nil, faults.FSConfig{Seed: 3, SyncErrorRate: 0.5}, nil)
	st, _, err := durable.Open(ctx, opts)
	if err != nil {
		// Directory fsync at open can be the injected victim; that is a
		// legal failure mode for this test.
		t.Skipf("open hit the injected sync error: %v", err)
	}
	applied := 0
	failedAt := -1
	for i, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			failedAt = i
			break
		}
		applied++
	}
	if failedAt < 0 {
		t.Fatal("expected an injected fsync failure at rate 0.5")
	}
	if got := int(st.LSN()); got != applied {
		t.Fatalf("store LSN %d, applied %d", got, applied)
	}
	// Poisoned: the very next Observe must fail without touching state.
	if _, err := st.Observe(ctx, batches[failedAt]); err == nil {
		t.Fatal("poisoned writer accepted another batch")
	}
	if got := int(st.LSN()); got != applied {
		t.Fatalf("poisoned Observe moved LSN to %d", got)
	}

	// Reopening converges on the log: the failed record's bytes reached
	// the file (only its fsync was denied), so recovery may legally see
	// applied or applied+1 batches — both are valid oracle states.
	ic, info, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := int(info.LSN)
	if m != applied && m != applied+1 {
		t.Fatalf("recovered LSN %d, want %d or %d", m, applied, applied+1)
	}
	samePool(t, ic.Pool(), pools[m], "post-fsync-failure recovery")
}

// A cancelled context makes Open fail cleanly (no partial writer) while
// Recover honours the anytime contract.
func TestOpenRefusesPartialRecovery(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	ctx := context.Background()

	dir := t.TempDir()
	st, _, err := durable.Open(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := durable.Open(cancelled, storeOpts(cat, dir, 4)); err == nil {
		t.Fatal("Open must refuse to append after a partial recovery")
	}
	ic, info, err := durable.Recover(cancelled, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatalf("Recover must be anytime: %v", err)
	}
	if !info.Partial {
		t.Fatal("cancelled recovery should be marked partial")
	}
	if ic == nil || ic.Pool() == nil {
		t.Fatal("partial recovery must still return a valid state")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want durable.SyncPolicy
	}{{"always", durable.SyncAlways}, {"rotate", durable.SyncRotate}, {"never", durable.SyncNever}} {
		got, err := durable.ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := durable.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// Segment rotation spreads the log across files and recovery stitches
// them back together.
func TestSegmentRotation(t *testing.T) {
	cat := testCatalog()
	batches := testBatches(t, cat)
	pools := oraclePools(cat, batches, 4)
	ctx := context.Background()

	dir := t.TempDir()
	opts := storeOpts(cat, dir, 4)
	opts.SegmentBytes = 256 // force a rotation every batch or two
	st, _, err := durable.Open(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.Observe(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", segs)
	}
	ic, _, err := durable.Recover(ctx, storeOpts(cat, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	samePool(t, ic.Pool(), pools[len(batches)], "rotated log")
}
