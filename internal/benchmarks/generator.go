// Package benchmarks synthesises the four evaluation workloads of the
// paper's Table 2 — TPC-H, TPC-DS, DSB [21], and the Real-M customer
// workload — as catalog + parameterised-template generators.
//
// The real benchmarks' data and qgen tooling are not available offline, so
// each generator reproduces the properties the paper's experiments depend
// on: table counts and relative sizes at the published scale factors,
// template counts (22 / 91 / 52 / 456), instance multiplicity, query-class
// mix (SPJ / Aggregate / Complex for DSB), selectivity spread via synthetic
// histograms, and — for Real-M — high template variety over many tables
// with cost skew. See DESIGN.md §1 for the substitution rationale.
package benchmarks

import (
	"fmt"
	"math/rand"

	"isum/internal/catalog"
	"isum/internal/workload"
)

// QueryClass is the DSB-style complexity class of a template (Fig. 12b–d).
type QueryClass int

const (
	// ClassSPJ is select-project-join.
	ClassSPJ QueryClass = iota
	// ClassAggregate adds grouping/aggregation.
	ClassAggregate
	// ClassComplex adds subqueries, CTEs, or multi-block structure.
	ClassComplex
)

// String names the class.
func (c QueryClass) String() string {
	switch c {
	case ClassSPJ:
		return "SPJ"
	case ClassAggregate:
		return "Aggregate"
	case ClassComplex:
		return "Complex"
	default:
		return "?"
	}
}

// Template is one parameterised query template.
type Template struct {
	Name  string
	Class QueryClass
	// Gen emits one instance's SQL using rng for parameter bindings.
	Gen func(rng *rand.Rand) string
}

// Generator produces workloads for one benchmark.
type Generator struct {
	Name      string
	Cat       *catalog.Catalog
	Templates []Template
}

// NumTemplates returns the template count.
func (g *Generator) NumTemplates() int { return len(g.Templates) }

// Workload generates n query instances by cycling templates round-robin
// (instance i uses template i mod T), parsed and analysed against the
// generator's catalog. Costs are left zero — fill them with the what-if
// optimizer or a log.
func (g *Generator) Workload(n int, seed int64) (*workload.Workload, error) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i % len(g.Templates)
	}
	return g.workloadFromTemplateIndices(idx, seed)
}

// WorkloadPerTemplate generates exactly `instances` instances of every
// template (Fig. 12a's instances-per-template sweep).
func (g *Generator) WorkloadPerTemplate(instances int, seed int64) (*workload.Workload, error) {
	var idx []int
	for t := range g.Templates {
		for i := 0; i < instances; i++ {
			idx = append(idx, t)
		}
	}
	return g.workloadFromTemplateIndices(idx, seed)
}

// WorkloadByClass generates n instances cycling only templates of the given
// class.
func (g *Generator) WorkloadByClass(class QueryClass, n int, seed int64) (*workload.Workload, error) {
	var classIdx []int
	for t, tpl := range g.Templates {
		if tpl.Class == class {
			classIdx = append(classIdx, t)
		}
	}
	if len(classIdx) == 0 {
		return nil, fmt.Errorf("benchmarks: %s has no %s templates", g.Name, class)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = classIdx[i%len(classIdx)]
	}
	return g.workloadFromTemplateIndices(idx, seed)
}

func (g *Generator) workloadFromTemplateIndices(tIdx []int, seed int64) (*workload.Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	sqls := make([]string, len(tIdx))
	for i, t := range tIdx {
		sqls[i] = g.Templates[t].Gen(rng)
	}
	w, err := workload.New(g.Cat, sqls)
	if err != nil {
		return nil, fmt.Errorf("benchmarks: %s: %w", g.Name, err)
	}
	return w, nil
}

// FromName returns the named benchmark generator ("tpch", "tpcds", "dsb",
// "realm", "scalem"; case-insensitive, dashes ignored). "scalem" is the
// template-expanded scale generator at its default template count; use
// ScaleM directly for other operating points.
func FromName(name string, sf float64, seed int64) (*Generator, error) {
	switch normalizeName(name) {
	case "tpch":
		return TPCH(sf), nil
	case "tpcds":
		return TPCDS(sf), nil
	case "dsb":
		return DSB(sf), nil
	case "realm":
		return RealM(seed), nil
	case "scalem":
		return ScaleM(seed, ScaleMDefaultTemplates), nil
	default:
		return nil, fmt.Errorf("benchmarks: unknown benchmark %q (want tpch, tpcds, dsb, realm, or scalem)", name)
	}
}

func normalizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		case c == '-' || c == '_' || c == ' ':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// ---- shared parameter helpers ----

// dateIn returns a random 'YYYY-MM-DD' between the years (inclusive).
func dateIn(rng *rand.Rand, yearLo, yearHi int) string {
	y := yearLo + rng.Intn(yearHi-yearLo+1)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// intIn returns a random integer in [lo, hi].
func intIn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// pick returns a random element.
func pick(rng *rand.Rand, opts ...string) string {
	return opts[rng.Intn(len(opts))]
}

// col adds a column with a synthetic histogram to a table. The distinct
// count is clamped to the table's row count.
func col(t *catalog.Table, name string, typ catalog.ColumnType, distinct int64, min, max float64, skew float64) {
	if distinct > t.RowCount && t.RowCount > 0 {
		distinct = t.RowCount
	}
	c := &catalog.Column{Name: name, Type: typ, DistinctCount: distinct, Min: min, Max: max}
	if typ != catalog.TypeString && max > min && t.RowCount > 0 {
		buckets := 40
		c.Hist = catalog.SyntheticHistogram(min, max, t.RowCount, distinct, buckets, skew)
	}
	t.AddColumn(c)
}

// strCol adds a string column (no histogram; density drives estimates).
func strCol(t *catalog.Table, name string, distinct int64, width int) {
	t.AddColumn(&catalog.Column{Name: name, Type: catalog.TypeString, DistinctCount: distinct, AvgWidth: width})
}

// days converts a date literal to the day-number domain.
func days(s string) float64 {
	d, ok := workload.ParseDateDays(s)
	if !ok {
		panic("benchmarks: bad date " + s)
	}
	return d
}
