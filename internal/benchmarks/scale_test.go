package benchmarks

import "testing"

func TestScaleMTemplateCount(t *testing.T) {
	g := ScaleM(1, 1500)
	if got := g.NumTemplates(); got != 1500 {
		t.Fatalf("NumTemplates = %d, want 1500", got)
	}
	if g.Name != "Scale-M" {
		t.Fatalf("Name = %q", g.Name)
	}
	if def := ScaleM(1, 0); def.NumTemplates() != ScaleMDefaultTemplates {
		t.Fatalf("default template count = %d, want %d", def.NumTemplates(), ScaleMDefaultTemplates)
	}
}

// TestScaleMDeterministicAndDuplicateHeavy pins the scale workload's two
// contracts: same (seed, templates, n) → byte-identical SQL, and
// template-expansion produces the duplicate-heavy shape hash-consing
// collapses (n instances over far fewer distinct templates).
func TestScaleMDeterministicAndDuplicateHeavy(t *testing.T) {
	const templates, n = 200, 2000
	g1 := ScaleM(3, templates)
	g2 := ScaleM(3, templates)
	w1, err := g1.Workload(n, 9)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := g2.Workload(n, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Len() != n || w2.Len() != n {
		t.Fatalf("lengths %d, %d; want %d", w1.Len(), w2.Len(), n)
	}
	for i := range w1.Queries {
		if w1.Queries[i].Text != w2.Queries[i].Text {
			t.Fatalf("query %d differs across identical seeds:\n%s\n%s", i, w1.Queries[i].Text, w2.Queries[i].Text)
		}
	}

	nt := w1.NumTemplates()
	if nt > templates {
		t.Fatalf("%d distinct templates from a %d-template generator", nt, templates)
	}
	// Round-robin instancing must leave every emitted query a duplicate of
	// a ~n/templates-strong group: distinct templates ≈ the generator's
	// template count, nowhere near n.
	if nt < templates/2 {
		t.Fatalf("only %d distinct templates after normalisation (want close to %d) — templates collide", nt, templates)
	}
	groups := w1.TemplateGroups()
	maxGroup := 0
	for _, g := range groups {
		if len(g.Indices) > maxGroup {
			maxGroup = len(g.Indices)
		}
	}
	if maxGroup < n/templates {
		t.Fatalf("largest template group %d, want ≥ %d", maxGroup, n/templates)
	}
}

func TestFromNameScaleM(t *testing.T) {
	g, err := FromName("scale-m", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTemplates() != ScaleMDefaultTemplates {
		t.Fatalf("FromName scalem templates = %d, want %d", g.NumTemplates(), ScaleMDefaultTemplates)
	}
}
