package benchmarks

import (
	"fmt"
	"math/rand"

	"isum/internal/catalog"
)

// TPCH returns a TPC-H generator at the given scale factor: the 8-table
// schema with published cardinalities and 22 parameterised templates
// adapted from the benchmark's query set.
func TPCH(sf float64) *Generator {
	cat := tpchCatalog(sf)
	return &Generator{
		Name:      "TPC-H",
		Cat:       cat,
		Templates: tpchTemplates(),
	}
}

func tpchCatalog(sf float64) *catalog.Catalog {
	cat := catalog.New()
	n := func(base float64) int64 { return int64(base * sf) }
	dLo, dHi := days("1992-01-01"), days("1998-12-31")

	region := catalog.NewTable("region", 5)
	col(region, "r_regionkey", catalog.TypeInt, 5, 0, 4, 0)
	strCol(region, "r_name", 5, 12)
	cat.AddTable(region)

	nation := catalog.NewTable("nation", 25)
	col(nation, "n_nationkey", catalog.TypeInt, 25, 0, 24, 0)
	strCol(nation, "n_name", 25, 12)
	col(nation, "n_regionkey", catalog.TypeInt, 5, 0, 4, 0)
	cat.AddTable(nation)

	supplier := catalog.NewTable("supplier", n(10000))
	col(supplier, "s_suppkey", catalog.TypeInt, n(10000), 1, float64(n(10000)), 0)
	strCol(supplier, "s_name", n(10000), 18)
	col(supplier, "s_nationkey", catalog.TypeInt, 25, 0, 24, 0)
	col(supplier, "s_acctbal", catalog.TypeDecimal, n(9000), -1000, 10000, 0)
	strCol(supplier, "s_address", n(10000), 25)
	strCol(supplier, "s_phone", n(10000), 15)
	strCol(supplier, "s_comment", n(9800), 60)
	cat.AddTable(supplier)

	part := catalog.NewTable("part", n(200000))
	col(part, "p_partkey", catalog.TypeInt, n(200000), 1, float64(n(200000)), 0)
	strCol(part, "p_name", n(199000), 35)
	strCol(part, "p_mfgr", 5, 25)
	strCol(part, "p_brand", 25, 10)
	strCol(part, "p_type", 150, 25)
	col(part, "p_size", catalog.TypeInt, 50, 1, 50, 0)
	strCol(part, "p_container", 40, 10)
	col(part, "p_retailprice", catalog.TypeDecimal, n(20000), 900, 2100, 0)
	cat.AddTable(part)

	partsupp := catalog.NewTable("partsupp", n(800000))
	col(partsupp, "ps_partkey", catalog.TypeInt, n(200000), 1, float64(n(200000)), 0)
	col(partsupp, "ps_suppkey", catalog.TypeInt, n(10000), 1, float64(n(10000)), 0)
	col(partsupp, "ps_availqty", catalog.TypeInt, 9999, 1, 9999, 0)
	col(partsupp, "ps_supplycost", catalog.TypeDecimal, n(99000), 1, 1000, 0)
	cat.AddTable(partsupp)

	customer := catalog.NewTable("customer", n(150000))
	col(customer, "c_custkey", catalog.TypeInt, n(150000), 1, float64(n(150000)), 0)
	strCol(customer, "c_name", n(150000), 18)
	col(customer, "c_nationkey", catalog.TypeInt, 25, 0, 24, 0)
	col(customer, "c_acctbal", catalog.TypeDecimal, n(140000), -1000, 10000, 0)
	strCol(customer, "c_mktsegment", 5, 10)
	strCol(customer, "c_phone", n(150000), 15)
	strCol(customer, "c_address", n(150000), 25)
	strCol(customer, "c_comment", n(149000), 73)
	cat.AddTable(customer)

	orders := catalog.NewTable("orders", n(1500000))
	col(orders, "o_orderkey", catalog.TypeInt, n(1500000), 1, float64(n(6000000)), 0)
	col(orders, "o_custkey", catalog.TypeInt, n(100000), 1, float64(n(150000)), 0)
	strCol(orders, "o_orderstatus", 3, 1)
	col(orders, "o_totalprice", catalog.TypeDecimal, n(1400000), 850, 560000, 0)
	col(orders, "o_orderdate", catalog.TypeDate, 2406, dLo, dHi-90, 0)
	strCol(orders, "o_orderpriority", 5, 15)
	strCol(orders, "o_clerk", n(1000), 15)
	col(orders, "o_shippriority", catalog.TypeInt, 1, 0, 0, 0)
	strCol(orders, "o_comment", n(1480000), 49)
	cat.AddTable(orders)

	lineitem := catalog.NewTable("lineitem", n(6000000))
	col(lineitem, "l_orderkey", catalog.TypeInt, n(1500000), 1, float64(n(6000000)), 0)
	col(lineitem, "l_partkey", catalog.TypeInt, n(200000), 1, float64(n(200000)), 0)
	col(lineitem, "l_suppkey", catalog.TypeInt, n(10000), 1, float64(n(10000)), 0)
	col(lineitem, "l_linenumber", catalog.TypeInt, 7, 1, 7, 0)
	col(lineitem, "l_quantity", catalog.TypeDecimal, 50, 1, 50, 0)
	col(lineitem, "l_extendedprice", catalog.TypeDecimal, n(930000), 900, 104950, 0)
	col(lineitem, "l_discount", catalog.TypeDecimal, 11, 0, 0.1, 0)
	col(lineitem, "l_tax", catalog.TypeDecimal, 9, 0, 0.08, 0)
	strCol(lineitem, "l_returnflag", 3, 1)
	strCol(lineitem, "l_linestatus", 2, 1)
	col(lineitem, "l_shipdate", catalog.TypeDate, 2526, dLo, dHi, 0)
	col(lineitem, "l_commitdate", catalog.TypeDate, 2466, dLo, dHi, 0)
	col(lineitem, "l_receiptdate", catalog.TypeDate, 2554, dLo, dHi, 0)
	strCol(lineitem, "l_shipinstruct", 4, 25)
	strCol(lineitem, "l_shipmode", 7, 10)
	strCol(lineitem, "l_comment", n(4500000), 27)
	cat.AddTable(lineitem)

	return cat
}

var tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
var tpchNations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
	"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ",
	"JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
var tpchSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var tpchModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var tpchBrands = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31",
	"Brand#32", "Brand#41", "Brand#42", "Brand#51", "Brand#52"}
var tpchContainers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG"}
var tpchTypes = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED TIN", "MEDIUM BURNISHED NICKEL",
	"PROMO PLATED COPPER", "SMALL BRUSHED BRASS", "LARGE POLISHED STEEL"}
var tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

func tpchTemplates() []Template {
	return []Template{
		{Name: "Q1", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
				SUM(l_extendedprice) AS sum_base_price,
				SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
				AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order
				FROM lineitem WHERE l_shipdate <= '1998-%02d-%02d'
				GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
				intIn(r, 8, 10), intIn(r, 1, 28))
		}},
		{Name: "Q2", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			region := pick(r, tpchRegions...)
			return fmt.Sprintf(`SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr
				FROM part, supplier, partsupp, nation, region
				WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = %d
				AND p_type LIKE '%%%s' AND s_nationkey = n_nationkey
				AND n_regionkey = r_regionkey AND r_name = '%s'
				AND ps_supplycost = (SELECT MIN(ps_supplycost) FROM partsupp, supplier, nation, region
					WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
					AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = '%s')
				ORDER BY s_acctbal DESC, n_name, s_name LIMIT 100`,
				intIn(r, 1, 50), pick(r, "STEEL", "TIN", "NICKEL", "COPPER", "BRASS"), region, region)
		}},
		{Name: "Q3", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			d := dateIn(r, 1995, 1995)
			return fmt.Sprintf(`SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
				o_orderdate, o_shippriority FROM customer, orders, lineitem
				WHERE c_mktsegment = '%s' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
				AND o_orderdate < '%s' AND l_shipdate > '%s'
				GROUP BY l_orderkey, o_orderdate, o_shippriority
				ORDER BY revenue DESC, o_orderdate LIMIT 10`,
				pick(r, tpchSegments...), d, d)
		}},
		{Name: "Q4", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			y, m := intIn(r, 1993, 1997), intIn(r, 1, 10)
			return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS order_count FROM orders
				WHERE o_orderdate >= '%04d-%02d-01' AND o_orderdate < '%04d-%02d-01' + INTERVAL '3' month
				AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
				GROUP BY o_orderpriority ORDER BY o_orderpriority`, y, m, y, m)
		}},
		{Name: "Q5", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			y := intIn(r, 1993, 1997)
			return fmt.Sprintf(`SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
				FROM customer, orders, lineitem, supplier, nation, region
				WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
				AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
				AND n_regionkey = r_regionkey AND r_name = '%s'
				AND o_orderdate >= '%04d-01-01' AND o_orderdate < '%04d-01-01'
				GROUP BY n_name ORDER BY revenue DESC`,
				pick(r, tpchRegions...), y, y+1)
		}},
		{Name: "Q6", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			y := intIn(r, 1993, 1997)
			disc := float64(intIn(r, 2, 9)) / 100
			return fmt.Sprintf(`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
				WHERE l_shipdate >= '%04d-01-01' AND l_shipdate < '%04d-01-01'
				AND l_discount BETWEEN %.2f AND %.2f AND l_quantity < %d`,
				y, y+1, disc-0.01, disc+0.01, intIn(r, 24, 25))
		}},
		{Name: "Q7", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			n1, n2 := pick(r, tpchNations...), pick(r, tpchNations...)
			return fmt.Sprintf(`SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
				EXTRACT(year FROM l_shipdate) AS l_year,
				SUM(l_extendedprice * (1 - l_discount)) AS revenue
				FROM supplier, lineitem, orders, customer, nation n1, nation n2
				WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey
				AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
				AND ((n1.n_name = '%s' AND n2.n_name = '%s') OR (n1.n_name = '%s' AND n2.n_name = '%s'))
				AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
				GROUP BY n1.n_name, n2.n_name ORDER BY supp_nation, cust_nation`,
				n1, n2, n2, n1)
		}},
		{Name: "Q8", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			nat := pick(r, tpchNations...)
			return fmt.Sprintf(`SELECT o_year, SUM(CASE WHEN nation = '%s' THEN volume ELSE 0 END) / SUM(volume) AS mkt_share
				FROM (SELECT EXTRACT(year FROM o_orderdate) AS o_year,
					l_extendedprice * (1 - l_discount) AS volume, n2.n_name AS nation
					FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
					WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey
					AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey
					AND n1.n_regionkey = r_regionkey AND r_name = '%s'
					AND s_nationkey = n2.n_nationkey
					AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' AND p_type = '%s') all_nations
				GROUP BY o_year ORDER BY o_year`,
				nat, pick(r, tpchRegions...), pick(r, tpchTypes...))
		}},
		{Name: "Q9", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT nation, o_year, SUM(amount) AS sum_profit
				FROM (SELECT n_name AS nation, EXTRACT(year FROM o_orderdate) AS o_year,
					l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
					FROM part, supplier, lineitem, partsupp, orders, nation
					WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey
					AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
					AND p_name LIKE '%%%s%%') profit
				GROUP BY nation, o_year ORDER BY nation, o_year DESC`,
				pick(r, "green", "blue", "red", "ivory", "pink", "salmon"))
		}},
		{Name: "Q10", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			y, m := intIn(r, 1993, 1994), intIn(r, 1, 12)
			return fmt.Sprintf(`SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
				c_acctbal, n_name FROM customer, orders, lineitem, nation
				WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
				AND o_orderdate >= '%04d-%02d-01' AND o_orderdate < '%04d-%02d-01' + INTERVAL '3' month
				AND l_returnflag = 'R' AND c_nationkey = n_nationkey
				GROUP BY c_custkey, c_name, c_acctbal, n_name
				ORDER BY revenue DESC LIMIT 20`, y, m, y, m)
		}},
		{Name: "Q11", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			nat := pick(r, tpchNations...)
			return fmt.Sprintf(`SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
				FROM partsupp, supplier, nation
				WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '%s'
				GROUP BY ps_partkey
				HAVING SUM(ps_supplycost * ps_availqty) > (
					SELECT SUM(ps_supplycost * ps_availqty) * %.10f FROM partsupp, supplier, nation
					WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = '%s')
				ORDER BY value DESC`, nat, 0.0001/10, nat)
		}},
		{Name: "Q12", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			y := intIn(r, 1993, 1997)
			m1, m2 := pick(r, tpchModes...), pick(r, tpchModes...)
			return fmt.Sprintf(`SELECT l_shipmode,
				SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count,
				SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count
				FROM orders, lineitem
				WHERE o_orderkey = l_orderkey AND l_shipmode IN ('%s', '%s')
				AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
				AND l_receiptdate >= '%04d-01-01' AND l_receiptdate < '%04d-01-01'
				GROUP BY l_shipmode ORDER BY l_shipmode`, m1, m2, y, y+1)
		}},
		{Name: "Q13", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT c_count, COUNT(*) AS custdist
				FROM (SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count
					FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey
					AND o_comment NOT LIKE '%%%s%%%s%%' GROUP BY c_custkey) c_orders
				GROUP BY c_count ORDER BY custdist DESC, c_count DESC`,
				pick(r, "special", "pending", "unusual", "express"),
				pick(r, "packages", "requests", "accounts", "deposits"))
		}},
		{Name: "Q14", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			y, m := intIn(r, 1993, 1997), intIn(r, 1, 12)
			return fmt.Sprintf(`SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%%'
				THEN l_extendedprice * (1 - l_discount) ELSE 0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
				FROM lineitem, part WHERE l_partkey = p_partkey
				AND l_shipdate >= '%04d-%02d-01' AND l_shipdate < '%04d-%02d-01' + INTERVAL '1' month`,
				y, m, y, m)
		}},
		{Name: "Q15", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			y, q := intIn(r, 1993, 1997), intIn(r, 1, 4)
			m := (q-1)*3 + 1
			return fmt.Sprintf(`WITH revenue (supplier_no, total_revenue) AS (
				SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) FROM lineitem
				WHERE l_shipdate >= '%04d-%02d-01' AND l_shipdate < '%04d-%02d-01' + INTERVAL '3' month
				GROUP BY l_suppkey)
				SELECT s_suppkey, s_name, s_address, s_phone, total_revenue FROM supplier, revenue
				WHERE s_suppkey = supplier_no
				AND total_revenue = (SELECT MAX(total_revenue) FROM revenue)
				ORDER BY s_suppkey`, y, m, y, m)
		}},
		{Name: "Q16", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
				FROM partsupp, part WHERE p_partkey = ps_partkey AND p_brand <> '%s'
				AND p_type NOT LIKE '%s%%' AND p_size IN (%d, %d, %d, %d)
				AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%%Customer%%Complaints%%')
				GROUP BY p_brand, p_type, p_size
				ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`,
				pick(r, tpchBrands...), pick(r, "MEDIUM POLISHED", "STANDARD BRUSHED", "SMALL PLATED"),
				intIn(r, 1, 10), intIn(r, 11, 20), intIn(r, 21, 35), intIn(r, 36, 50))
		}},
		{Name: "Q17", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem, part
				WHERE p_partkey = l_partkey AND p_brand = '%s' AND p_container = '%s'
				AND l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem WHERE l_partkey = p_partkey)`,
				pick(r, tpchBrands...), pick(r, tpchContainers...))
		}},
		{Name: "Q18", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity)
				FROM customer, orders, lineitem
				WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey
					HAVING SUM(l_quantity) > %d)
				AND c_custkey = o_custkey AND o_orderkey = l_orderkey
				GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
				ORDER BY o_totalprice DESC, o_orderdate LIMIT 100`, intIn(r, 312, 315))
		}},
		{Name: "Q19", Class: ClassSPJ, Gen: func(r *rand.Rand) string {
			q1, q2, q3 := intIn(r, 1, 10), intIn(r, 10, 20), intIn(r, 20, 30)
			return fmt.Sprintf(`SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem, part
				WHERE (p_partkey = l_partkey AND p_brand = '%s' AND p_container IN ('SM CASE', 'SM BOX')
					AND l_quantity >= %d AND l_quantity <= %d AND p_size BETWEEN 1 AND 5
					AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')
				OR (p_partkey = l_partkey AND p_brand = '%s' AND p_container IN ('MED BAG', 'MED BOX')
					AND l_quantity >= %d AND l_quantity <= %d AND p_size BETWEEN 1 AND 10
					AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')
				OR (p_partkey = l_partkey AND p_brand = '%s' AND p_container IN ('LG CASE', 'LG BOX')
					AND l_quantity >= %d AND l_quantity <= %d AND p_size BETWEEN 1 AND 15
					AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')`,
				pick(r, tpchBrands...), q1, q1+10,
				pick(r, tpchBrands...), q2, q2+10,
				pick(r, tpchBrands...), q3, q3+10)
		}},
		{Name: "Q20", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			y := intIn(r, 1993, 1997)
			return fmt.Sprintf(`SELECT s_name, s_address FROM supplier, nation
				WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp
					WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE '%s%%')
					AND ps_availqty > (SELECT 0.5 * SUM(l_quantity) FROM lineitem
						WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
						AND l_shipdate >= '%04d-01-01' AND l_shipdate < '%04d-01-01'))
				AND s_nationkey = n_nationkey AND n_name = '%s' ORDER BY s_name`,
				pick(r, "forest", "olive", "azure", "chocolate"), y, y+1, pick(r, tpchNations...))
		}},
		{Name: "Q21", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem l1, orders, nation
				WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey AND o_orderstatus = 'F'
				AND l1.l_receiptdate > l1.l_commitdate
				AND EXISTS (SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = l1.l_orderkey
					AND l2.l_suppkey <> l1.l_suppkey)
				AND NOT EXISTS (SELECT 1 FROM lineitem l3 WHERE l3.l_orderkey = l1.l_orderkey
					AND l3.l_suppkey <> l1.l_suppkey AND l3.l_receiptdate > l3.l_commitdate)
				AND s_nationkey = n_nationkey AND n_name = '%s'
				GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100`,
				pick(r, tpchNations...))
		}},
		{Name: "Q22", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			c := []string{}
			for i := 0; i < 7; i++ {
				c = append(c, fmt.Sprintf("'%d'", intIn(r, 10, 34)))
			}
			in := fmt.Sprintf("%s, %s, %s, %s, %s, %s, %s", c[0], c[1], c[2], c[3], c[4], c[5], c[6])
			return fmt.Sprintf(`SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
				FROM (SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
					FROM customer WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN (%s)
					AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.00
						AND SUBSTRING(c_phone FROM 1 FOR 2) IN (%s))
					AND NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)) custsale
				GROUP BY cntrycode ORDER BY cntrycode`, in, in)
		}},
	}
}
