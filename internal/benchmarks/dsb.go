package benchmarks

import (
	"fmt"
	"math/rand"
)

// DSB returns a DSB [21] generator: the TPC-DS schema with skewed data
// distributions and 52 templates drawn from the family pool with an even
// SPJ / Aggregate / Complex class mix (18/17/17), plus DSB's signature
// multi-way-join additions. DSB is the paper's "complex, large variety of
// templates, skewed distribution" benchmark (Table 2, Fig. 12).
func DSB(sf float64) *Generator {
	cat := tpcdsCatalog(sf, 1.1) // zipf-like skew on fact columns
	return &Generator{Name: "DSB", Cat: cat, Templates: dsbTemplates()}
}

// dsbTemplates assembles 52 class-balanced templates.
func dsbTemplates() []Template {
	fams := tpcdsFamilies()
	byName := map[string]dsFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	chans := dsChannels()

	// Hand-picked family×channel combinations, balanced by class.
	type pickSpec struct {
		fam string
		ch  int
	}
	spjPicks := []pickSpec{
		{"date_item_spj", 0}, {"date_item_spj", 1}, {"date_item_spj", 2},
		{"demographics_spj", 0}, {"demographics_spj", 1}, {"demographics_spj", 2},
		{"promotion_spj", 0}, {"promotion_spj", 1},
		{"color_price_spj", 0}, {"color_price_spj", 2},
		{"point_lookup", 0}, {"point_lookup", 1}, {"point_lookup", 2},
		{"gmt_state_spj", 0}, {"gmt_state_spj", 1},
		{"fact_only_scan", 0}, {"fact_only_scan", 2},
		{"preferred_flag_spj", 1},
	} // 18
	aggPicks := []pickSpec{
		{"category_revenue", 0}, {"category_revenue", 1}, {"category_revenue", 2},
		{"state_city_agg", 0}, {"state_city_agg", 2},
		{"household_agg", 1}, {"top_customers", 0}, {"top_customers", 2},
		{"returns_reason", 0}, {"returns_reason", 1},
		{"channel_dim_agg", 0}, {"channel_dim_agg", 2},
		{"monthly_distinct", 1}, {"brand_manager_agg", 0},
		{"quarterly_rollup", 1}, {"class_profit_agg", 2},
		{"income_band_agg", 0},
	} // 17
	cplxPicks := []pickSpec{
		{"above_avg_quantity", 0}, {"above_avg_quantity", 1}, {"above_avg_quantity", 2},
		{"yoy_cte", 0}, {"yoy_cte", 2},
		{"cross_channel_exists", 0}, {"cross_channel_exists", 1},
		{"in_expensive_items", 1}, {"in_expensive_items", 2},
		{"having_sum", 0}, {"having_sum", 1},
		{"above_category_avg", 0}, {"above_category_avg", 2},
		{"returned_then_bought", 1},
	} // 14 + 3 DSB-specific below = 17

	var out []Template
	add := func(picks []pickSpec) {
		for _, p := range picks {
			fam, ok := byName[p.fam]
			if !ok {
				panic("dsb: unknown family " + p.fam)
			}
			ch := chans[p.ch]
			out = append(out, Template{
				Name:  "dsb_" + fam.name + "_" + ch.name,
				Class: fam.class,
				Gen:   func(r *rand.Rand) string { return fam.gen(ch, r) },
			})
		}
	}
	add(spjPicks)
	add(aggPicks)
	add(cplxPicks)

	// DSB-specific multi-way joins with correlated predicates.
	out = append(out,
		Template{Name: "dsb_multijoin_store", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, s_state, SUM(ss_net_profit) AS profit
				FROM store_sales, item, store, date_dim, customer, customer_address
				WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk
				AND ss_sold_date_sk = d_date_sk AND ss_customer_sk = c_customer_sk
				AND c_current_addr_sk = ca_address_sk AND ca_state = s_state
				AND d_year = %d AND i_category = '%s'
				GROUP BY i_category, s_state ORDER BY profit DESC`,
				intIn(r, 1998, 2002), pick(r, dsCategories...))
		}},
		Template{Name: "dsb_multijoin_web", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT web_name, SUM(ws_ext_sales_price) AS rev
				FROM web_sales, web_site, web_page, date_dim, ship_mode
				WHERE ws_web_site_sk = web_site_sk AND ws_web_page_sk = wp_web_page_sk
				AND ws_sold_date_sk = d_date_sk AND ws_ship_mode_sk = sm_ship_mode_sk
				AND sm_type = '%s' AND d_moy = %d AND wp_char_count BETWEEN %d AND %d
				GROUP BY web_name ORDER BY rev DESC LIMIT 50`,
				pick(r, "EXPRESS", "OVERNIGHT", "REGULAR", "LIBRARY", "TWO DAY", "NEXT DAY"),
				intIn(r, 1, 12), intIn(r, 100, 4000), intIn(r, 4001, 8000))
		}},
		Template{Name: "dsb_multijoin_catalog", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT cc_name, w_state, COUNT(*) AS cnt
				FROM catalog_sales, call_center, warehouse, date_dim, customer_demographics
				WHERE cs_call_center_sk = cc_call_center_sk AND cs_warehouse_sk = w_warehouse_sk
				AND cs_sold_date_sk = d_date_sk AND cs_bill_cdemo_sk = cd_demo_sk
				AND cd_gender = '%s' AND cd_education_status = '%s' AND d_year = %d
				GROUP BY cc_name, w_state HAVING COUNT(*) > %d`,
				pick(r, dsGenders...), pick(r, dsEducation...), intIn(r, 1998, 2002), intIn(r, 5, 20))
		}},
	)
	return out
}
