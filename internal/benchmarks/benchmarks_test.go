package benchmarks

import (
	"fmt"
	"testing"

	"isum/internal/cost"
	"isum/internal/workload"
)

func TestTPCHShape(t *testing.T) {
	g := TPCH(10)
	if g.Cat.NumTables() != 8 {
		t.Fatalf("tables = %d, want 8", g.Cat.NumTables())
	}
	if g.NumTemplates() != 22 {
		t.Fatalf("templates = %d, want 22", g.NumTemplates())
	}
	if errs := g.Cat.Validate(); len(errs) > 0 {
		t.Fatalf("catalog invalid: %v", errs)
	}
	li := g.Cat.Table("lineitem")
	or := g.Cat.Table("orders")
	if li.RowCount != 4*or.RowCount {
		t.Fatalf("lineitem/orders ratio wrong: %d vs %d", li.RowCount, or.RowCount)
	}
}

func TestTPCDSShape(t *testing.T) {
	g := TPCDS(10)
	if g.Cat.NumTables() != 24 {
		t.Fatalf("tables = %d, want 24", g.Cat.NumTables())
	}
	if g.NumTemplates() != 91 {
		t.Fatalf("templates = %d, want 91", g.NumTemplates())
	}
	if errs := g.Cat.Validate(); len(errs) > 0 {
		t.Fatalf("catalog invalid: %v", errs)
	}
}

func TestDSBShape(t *testing.T) {
	g := DSB(10)
	if g.NumTemplates() != 52 {
		t.Fatalf("templates = %d, want 52", g.NumTemplates())
	}
	classes := map[QueryClass]int{}
	for _, tpl := range g.Templates {
		classes[tpl.Class]++
	}
	if classes[ClassSPJ] < 15 || classes[ClassAggregate] < 15 || classes[ClassComplex] < 15 {
		t.Fatalf("class mix unbalanced: %v", classes)
	}
	if errs := g.Cat.Validate(); len(errs) > 0 {
		t.Fatalf("catalog invalid: %v", errs)
	}
}

func TestRealMShape(t *testing.T) {
	g := RealM(42)
	if g.Cat.NumTables() != 474 {
		t.Fatalf("tables = %d, want 474", g.Cat.NumTables())
	}
	if g.NumTemplates() != 456 {
		t.Fatalf("templates = %d, want 456", g.NumTemplates())
	}
	if errs := g.Cat.Validate(); len(errs) > 0 {
		t.Fatalf("catalog invalid: %v (first)", errs[0])
	}
}

// TestAllGeneratorsProduceAnalysableWorkloads instantiates every template of
// every benchmark and requires it to parse, bind, and produce indexable
// features and a positive cost.
func TestAllGeneratorsProduceAnalysableWorkloads(t *testing.T) {
	gens := []*Generator{TPCH(1), TPCDS(1), DSB(1), RealM(7)}
	for _, g := range gens {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			w, err := g.Workload(g.NumTemplates(), 3)
			if err != nil {
				t.Fatal(err)
			}
			if w.Len() != g.NumTemplates() {
				t.Fatalf("len = %d", w.Len())
			}
			o := cost.NewOptimizer(g.Cat)
			o.FillCosts(w)
			noTables, noCost := 0, 0
			for i, q := range w.Queries {
				if len(q.Info.Tables) == 0 {
					noTables++
					t.Errorf("template %s (query %d) binds no tables", g.Templates[i%len(g.Templates)].Name, i)
				}
				if q.Cost <= 0 {
					noCost++
				}
			}
			if noCost > 0 {
				t.Fatalf("%d queries with non-positive cost", noCost)
			}
		})
	}
}

func TestWorkloadTableTwoCounts(t *testing.T) {
	// Table 2 of the paper: template and table counts per workload at the
	// paper's workload sizes.
	cases := []struct {
		gen       *Generator
		n         int
		templates int
	}{
		{TPCH(1), 2200, 22},
		{DSB(1), 520, 52},
	}
	for _, c := range cases {
		w, err := c.gen.Workload(c.n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.NumTemplates(); got != c.templates {
			t.Fatalf("%s: templates = %d, want %d", c.gen.Name, got, c.templates)
		}
	}
}

func TestWorkloadDeterministicBySeed(t *testing.T) {
	g := TPCH(1)
	a, err := g.Workload(44, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Workload(44, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Text != b.Queries[i].Text {
			t.Fatalf("query %d differs between identically-seeded runs", i)
		}
	}
	c, _ := g.Workload(44, 10)
	same := true
	for i := range a.Queries {
		if a.Queries[i].Text != c.Queries[i].Text {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should vary parameters")
	}
}

func TestWorkloadPerTemplate(t *testing.T) {
	g := DSB(1)
	w, err := g.WorkloadPerTemplate(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 52*4 {
		t.Fatalf("len = %d", w.Len())
	}
	for tid, cnt := range w.TemplateCounts() {
		if cnt != 4 {
			t.Fatalf("template %q has %d instances, want 4", tid, cnt)
		}
	}
}

func TestWorkloadByClass(t *testing.T) {
	g := DSB(1)
	for _, class := range []QueryClass{ClassSPJ, ClassAggregate, ClassComplex} {
		w, err := g.WorkloadByClass(class, 30, 2)
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != 30 {
			t.Fatalf("%s: len = %d", class, w.Len())
		}
	}
	if _, err := (&Generator{Name: "x", Templates: []Template{}}).WorkloadByClass(ClassSPJ, 5, 1); err == nil {
		t.Fatal("expected error for empty class")
	}
}

func TestRealMCostSkew(t *testing.T) {
	g := RealM(11)
	w, err := g.Workload(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(g.Cat).FillCosts(w)
	// The paper describes Real-M as cost-dominated: the top decile of
	// queries should hold a large share of total cost.
	costs := make([]float64, w.Len())
	var total float64
	for i, q := range w.Queries {
		costs[i] = q.Cost
		total += q.Cost
	}
	// top 10% share
	top := topShare(costs, 0.1)
	if top < 0.3*total {
		t.Fatalf("cost skew too low: top decile %.0f of %.0f", top, total)
	}
}

func topShare(costs []float64, frac float64) float64 {
	cp := append([]float64{}, costs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] > cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	n := int(float64(len(cp)) * frac)
	var s float64
	for i := 0; i < n; i++ {
		s += cp[i]
	}
	return s
}

func TestQueryClassString(t *testing.T) {
	if ClassSPJ.String() != "SPJ" || ClassAggregate.String() != "Aggregate" ||
		ClassComplex.String() != "Complex" || QueryClass(9).String() != "?" {
		t.Fatal("class names broken")
	}
}

func TestScaleFactorScalesRows(t *testing.T) {
	small, big := TPCH(1), TPCH(10)
	ls, lb := small.Cat.Table("lineitem").RowCount, big.Cat.Table("lineitem").RowCount
	if lb != 10*ls {
		t.Fatalf("sf scaling broken: %d vs %d", ls, lb)
	}
	if small.Cat.Table("region").RowCount != big.Cat.Table("region").RowCount {
		t.Fatal("fixed tables should not scale")
	}
}

func TestTemplatesProduceStableFingerprints(t *testing.T) {
	// Instances of the same template must share a workload fingerprint.
	g := TPCH(1)
	for ti, tpl := range g.Templates {
		w, err := g.workloadFromTemplateIndices([]int{ti, ti, ti}, 77)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		fp := w.Queries[0].TemplateID
		for _, q := range w.Queries[1:] {
			if q.TemplateID != fp {
				t.Fatalf("%s: instances diverge:\n%s\n%s", tpl.Name, w.Queries[0].Text, q.Text)
			}
		}
	}
}

func ExampleGenerator_Workload() {
	g := TPCH(1)
	w, _ := g.Workload(44, 1)
	fmt.Println(w.Len(), w.NumTemplates())
	// Output: 44 22
}

var _ = workload.Fingerprint // keep import for Example symmetry

func TestRealMTemplateVariety(t *testing.T) {
	// Table 2 profile: 473 queries over ~456 templates. Literal
	// normalisation merges a few structurally identical templates; require
	// the distinct count to stay close.
	g := RealM(41)
	w, err := g.Workload(473, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumTemplates() < 420 {
		t.Fatalf("distinct templates = %d, want >= 420", w.NumTemplates())
	}
}
