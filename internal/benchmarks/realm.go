package benchmarks

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"isum/internal/catalog"
)

// RealM synthesises a workload with the structural profile the paper
// reports for its real customer workload Real-M (Table 2, Section 8.1):
// 474 tables, 456 distinct templates over 473 queries (almost no template
// repeats), heavily skewed query costs with a dominant cost factor, and
// queries that are "more similar to each other" — concentrated on a small
// set of hot tables and hot columns.
//
// The generator is seeded and fully deterministic for a given seed.
func RealM(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	cat, tables := realmCatalog(rng)
	return &Generator{
		Name:      "Real-M",
		Cat:       cat,
		Templates: realmTemplates(rng, tables, realmTemplateN),
	}
}

// realmTable captures generation-time metadata about a synthetic table.
type realmTable struct {
	name    string
	rows    int64
	intCols []string // filterable int columns
	fkCols  []string // join columns shared with the hub tables
	strCols []string
	hot     bool
}

const (
	realmTables    = 474
	realmTemplateN = 456
	realmHotTables = 24 // hub tables most queries touch
)

func realmCatalog(rng *rand.Rand) (*catalog.Catalog, []realmTable) {
	cat := catalog.New()
	tables := make([]realmTable, 0, realmTables)
	for i := 0; i < realmTables; i++ {
		hot := i < realmHotTables
		// Log-normal row counts: hubs are large (1M–50M), the long tail is
		// small (1k–1M).
		var rows int64
		if hot {
			rows = int64(1_000_000 * math.Exp(rng.Float64()*3.9))
		} else {
			rows = int64(1_000 * math.Exp(rng.Float64()*6.9))
		}
		t := catalog.NewTable(fmt.Sprintf("t%03d", i), rows)
		rt := realmTable{name: t.Name, rows: rows, hot: hot}

		// Primary key.
		col(t, "id", catalog.TypeInt, rows, 1, float64(rows), 0)

		// Foreign keys into hub tables: give every table 1–3 so the
		// workload's queries share join columns (the "similar to each
		// other" property).
		nFK := 1 + rng.Intn(3)
		for f := 0; f < nFK; f++ {
			hub := rng.Intn(realmHotTables)
			name := fmt.Sprintf("fk_t%03d", hub)
			if t.Column(name) != nil {
				continue
			}
			hubRows := int64(1_000_000)
			if hub < len(tables) {
				hubRows = tables[hub].rows
			}
			distinct := hubRows/2 + 1
			if distinct > rows {
				distinct = rows
			}
			col(t, name, catalog.TypeInt, distinct, 1, float64(hubRows), 0.8)
			rt.fkCols = append(rt.fkCols, name)
		}

		// Filterable attribute columns with varied cardinalities.
		nInt := 2 + rng.Intn(4)
		for c := 0; c < nInt; c++ {
			name := fmt.Sprintf("a%d", c)
			distinct := int64(math.Exp(rng.Float64()*12)) + 2
			if distinct > rows {
				distinct = rows
			}
			col(t, name, catalog.TypeInt, distinct, 0, float64(distinct)*3, 0.7)
			rt.intCols = append(rt.intCols, name)
		}
		nStr := 1 + rng.Intn(3)
		for c := 0; c < nStr; c++ {
			name := fmt.Sprintf("s%d", c)
			strCol(t, name, int64(5+rng.Intn(500)), 16)
			rt.strCols = append(rt.strCols, name)
		}
		col(t, "created_at", catalog.TypeDate, 1400,
			days("2018-01-01"), days("2021-12-31"), 0.4)

		cat.AddTable(t)
		tables = append(tables, rt)
	}
	return cat, tables
}

// realmTemplates builds n templates (456 for Real-M itself; the Scale-M
// generator asks for thousands). Hot tables appear in most templates
// (directly or as join hubs); cold tables appear rarely, mirroring real
// workloads' hot/cold access skew.
func realmTemplates(rng *rand.Rand, tables []realmTable, n int) []Template {
	var out []Template
	hubFor := func(fk string) string { return strings.TrimPrefix(fk, "fk_") }

	for i := 0; i < n; i++ {
		// 70% of templates centre on a hot table, the rest on the tail.
		var base realmTable
		if rng.Float64() < 0.7 {
			base = tables[rng.Intn(realmHotTables)]
		} else {
			base = tables[realmHotTables+rng.Intn(len(tables)-realmHotTables)]
		}
		shape := rng.Intn(5)

		// Freeze the structural choices now (template identity), leaving
		// only literals to the per-instance rng. The extra structural knobs
		// (secondary predicate, string filter, ordering) keep the 456
		// templates distinct after literal normalisation.
		filterCol := base.intCols[rng.Intn(len(base.intCols))]
		filterCol2 := base.intCols[rng.Intn(len(base.intCols))]
		var strCol string
		if len(base.strCols) > 0 {
			strCol = base.strCols[rng.Intn(len(base.strCols))]
		}
		var joinFK string
		if len(base.fkCols) > 0 {
			joinFK = base.fkCols[rng.Intn(len(base.fkCols))]
		}
		groupCol := base.intCols[rng.Intn(len(base.intCols))]
		withSecond := rng.Intn(2) == 0 && filterCol2 != filterCol
		withStr := rng.Intn(2) == 0 && strCol != ""
		withOrder := rng.Intn(2) == 0
		tmplName := fmt.Sprintf("realm_%03d_%s", i, base.name)
		bt := base

		extra := func(r *rand.Rand, qualifier string) string {
			s := ""
			if withSecond {
				s += fmt.Sprintf(" AND %s%s < %d", qualifier, filterCol2, intIn(r, 100, 9000))
			}
			if withStr {
				s += fmt.Sprintf(" AND %s%s = 'v%d'", qualifier, strCol, intIn(r, 0, 400))
			}
			return s
		}
		gen := func(r *rand.Rand) string {
			switch {
			case shape == 0: // selective point/range scan
				sql := fmt.Sprintf(`SELECT id, %s FROM %s WHERE %s = %d AND created_at >= '%s'%s`,
					filterCol2, bt.name, filterCol, intIn(r, 0, 1000), dateIn(r, 2018, 2021),
					extra(r, ""))
				if withOrder {
					sql += " ORDER BY created_at DESC LIMIT 100"
				}
				return sql
			case shape == 1 && joinFK != "": // hub join + filter
				hub := hubFor(joinFK)
				return fmt.Sprintf(`SELECT %s.id FROM %s, %s WHERE %s.%s = %s.id
					AND %s.%s > %d%s ORDER BY %s.id LIMIT 500`,
					hub, bt.name, hub, bt.name, joinFK, hub,
					bt.name, filterCol, intIn(r, 10, 2000), extra(r, bt.name+"."), hub)
			case shape == 2: // aggregate rollup
				cols := groupCol
				if withSecond {
					cols += ", " + filterCol2
				}
				return fmt.Sprintf(`SELECT %s, COUNT(*) AS cnt, MAX(created_at) AS latest FROM %s
					WHERE created_at BETWEEN '%s' AND '%s' GROUP BY %s ORDER BY cnt DESC LIMIT 100`,
					cols, bt.name, dateIn(r, 2018, 2019), dateIn(r, 2020, 2021), cols)
			case shape == 3 && joinFK != "": // join + aggregate
				hub := hubFor(joinFK)
				return fmt.Sprintf(`SELECT %s.id, COUNT(*) AS cnt FROM %s, %s
					WHERE %s.%s = %s.id AND %s.%s BETWEEN %d AND %d%s
					GROUP BY %s.id HAVING COUNT(*) > %d LIMIT 200`,
					hub, bt.name, hub, bt.name, joinFK, hub,
					bt.name, filterCol, intIn(r, 0, 500), intIn(r, 501, 3000), extra(r, bt.name+"."),
					hub, intIn(r, 2, 10))
			default: // EXISTS probe against a hub
				if joinFK == "" {
					return fmt.Sprintf(`SELECT id FROM %s WHERE %s < %d%s ORDER BY created_at DESC LIMIT 50`,
						bt.name, filterCol, intIn(r, 5, 500), extra(r, ""))
				}
				hub := hubFor(joinFK)
				return fmt.Sprintf(`SELECT id FROM %s WHERE %s > %d%s
					AND EXISTS (SELECT 1 FROM %s WHERE %s.id = %s.%s)`,
					bt.name, filterCol, intIn(r, 100, 4000), extra(r, ""),
					hub, hub, bt.name, joinFK)
			}
		}
		class := ClassSPJ
		if shape == 2 || shape == 3 {
			class = ClassAggregate
		} else if shape == 4 {
			class = ClassComplex
		}
		out = append(out, Template{Name: tmplName, Class: class, Gen: gen})
	}
	return out
}

// RealMWorkloadSize is the paper's Real-M query count (Table 2).
const RealMWorkloadSize = 473
