package benchmarks

import "math/rand"

// ScaleMDefaultTemplates is the template count FromName("scalem") uses —
// the upper end of the paper's template statistics (Table 2) and the
// operating point the million-query scale path collapses workloads to:
// hash-consing a 10⁵–10⁶-query Scale-M workload leaves ~this many
// distinct greedy states.
const ScaleMDefaultTemplates = 2000

// ScaleM synthesises the million-query scale workload source (ROADMAP
// item 3): the Real-M catalog profile — 474 tables with hub/tail skew —
// but with a parameterised template count, so Workload(n, seed) can
// template-expand 10⁵–10⁶ query instances over 10³–10⁴ distinct
// templates. Instances cycle templates round-robin, giving every
// template ≈ n/templates literal-varied duplicates: exactly the
// duplicate-heavy shape production query stores exhibit and the shape
// template hash-consing and sharded compression are built for.
//
// templates < 1 falls back to ScaleMDefaultTemplates. The generator is
// seeded and fully deterministic for a given (seed, templates) pair.
func ScaleM(seed int64, templates int) *Generator {
	if templates < 1 {
		templates = ScaleMDefaultTemplates
	}
	rng := rand.New(rand.NewSource(seed))
	cat, tables := realmCatalog(rng)
	return &Generator{
		Name:      "Scale-M",
		Cat:       cat,
		Templates: realmTemplates(rng, tables, templates),
	}
}
