package benchmarks

import (
	"math/rand"
	"testing"

	"isum/internal/features"
)

// tpchExpectation pins the analysed structure of each TPC-H template:
// the number of distinct base tables, lower bounds on extracted filter and
// join predicates, grouping/ordering presence, and the number of SELECT
// blocks (1 + subqueries/CTEs). A regression here means the parser, binder,
// or predicate extraction changed behaviour on real query shapes.
type tpchExpectation struct {
	tables    int
	minFilter int
	minJoins  int
	groupBy   bool
	orderBy   bool
	minBlocks int
}

// Note: ORDER BY / GROUP BY over SELECT-list aliases or derived-table
// outputs (e.g. Q5's "ORDER BY revenue") are correctly NOT extracted as
// indexable columns, so several templates expect false below despite having
// an ORDER BY clause. Joins through CTE outputs (Q15's s_suppkey =
// supplier_no) resolve only one side and land as filters, not joins.
var tpchExpected = map[string]tpchExpectation{
	"Q1":  {tables: 1, minFilter: 1, minJoins: 0, groupBy: true, orderBy: true, minBlocks: 1},
	"Q2":  {tables: 5, minFilter: 2, minJoins: 7, groupBy: false, orderBy: true, minBlocks: 2},
	"Q3":  {tables: 3, minFilter: 3, minJoins: 2, groupBy: true, orderBy: true, minBlocks: 1},
	"Q4":  {tables: 2, minFilter: 2, minJoins: 1, groupBy: true, orderBy: true, minBlocks: 2},
	"Q5":  {tables: 6, minFilter: 3, minJoins: 6, groupBy: true, orderBy: false, minBlocks: 1},
	"Q6":  {tables: 1, minFilter: 4, minJoins: 0, groupBy: false, orderBy: false, minBlocks: 1},
	"Q7":  {tables: 5, minFilter: 3, minJoins: 5, groupBy: true, orderBy: false, minBlocks: 1},
	"Q8":  {tables: 7, minFilter: 2, minJoins: 7, groupBy: false, orderBy: false, minBlocks: 2},
	"Q9":  {tables: 6, minFilter: 1, minJoins: 6, groupBy: false, orderBy: false, minBlocks: 2},
	"Q10": {tables: 4, minFilter: 3, minJoins: 3, groupBy: true, orderBy: false, minBlocks: 1},
	"Q11": {tables: 3, minFilter: 1, minJoins: 2, groupBy: true, orderBy: false, minBlocks: 2},
	"Q12": {tables: 2, minFilter: 3, minJoins: 1, groupBy: true, orderBy: true, minBlocks: 1},
	"Q13": {tables: 2, minFilter: 1, minJoins: 1, groupBy: true, orderBy: false, minBlocks: 2},
	"Q14": {tables: 2, minFilter: 2, minJoins: 1, groupBy: false, orderBy: false, minBlocks: 1},
	"Q15": {tables: 2, minFilter: 1, minJoins: 0, groupBy: true, orderBy: true, minBlocks: 3},
	"Q16": {tables: 3, minFilter: 3, minJoins: 1, groupBy: true, orderBy: true, minBlocks: 2},
	"Q17": {tables: 2, minFilter: 2, minJoins: 2, groupBy: false, orderBy: false, minBlocks: 2},
	"Q18": {tables: 3, minFilter: 0, minJoins: 2, groupBy: true, orderBy: true, minBlocks: 2},
	"Q19": {tables: 2, minFilter: 8, minJoins: 1, groupBy: false, orderBy: false, minBlocks: 1},
	"Q20": {tables: 5, minFilter: 3, minJoins: 3, groupBy: false, orderBy: true, minBlocks: 4},
	"Q21": {tables: 4, minFilter: 2, minJoins: 4, groupBy: true, orderBy: true, minBlocks: 3},
	"Q22": {tables: 2, minFilter: 2, minJoins: 0, groupBy: false, orderBy: false, minBlocks: 3},
}

func TestTPCHTemplateAnalysis(t *testing.T) {
	g := TPCH(1)
	rng := rand.New(rand.NewSource(5))
	ex := features.NewExtractor(g.Cat)
	for _, tpl := range g.Templates {
		tpl := tpl
		t.Run(tpl.Name, func(t *testing.T) {
			want, ok := tpchExpected[tpl.Name]
			if !ok {
				t.Fatalf("no expectation for %s", tpl.Name)
			}
			w, err := g.workloadFromTemplateIndices([]int{indexOf(g, tpl.Name)}, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			q := w.Queries[0]
			info := q.Info
			if got := len(info.Tables); got != want.tables {
				t.Errorf("tables = %d, want %d (%v)", got, want.tables, info.Tables)
			}
			if got := len(info.Filters); got < want.minFilter {
				t.Errorf("filters = %d, want >= %d: %+v", got, want.minFilter, info.Filters)
			}
			if got := len(info.Joins); got < want.minJoins {
				t.Errorf("joins = %d, want >= %d: %+v", got, want.minJoins, info.Joins)
			}
			if got := len(info.GroupBy) > 0; got != want.groupBy {
				t.Errorf("groupBy presence = %v, want %v", got, want.groupBy)
			}
			if got := len(info.OrderBy) > 0; got != want.orderBy {
				t.Errorf("orderBy presence = %v, want %v", got, want.orderBy)
			}
			if got := len(info.Blocks); got < want.minBlocks {
				t.Errorf("blocks = %d, want >= %d", got, want.minBlocks)
			}
			// Every template must featurise non-trivially.
			if v := ex.Features(q); len(v) == 0 {
				t.Error("no features extracted")
			}
			// All selectivities in (0, 1].
			for _, f := range info.Filters {
				if f.Selectivity <= 0 || f.Selectivity > 1 {
					t.Errorf("filter selectivity out of range: %+v", f)
				}
			}
			for _, j := range info.Joins {
				if j.Selectivity <= 0 || j.Selectivity > 1 {
					t.Errorf("join selectivity out of range: %+v", j)
				}
			}
		})
	}
}

func indexOf(g *Generator, name string) int {
	for i, tpl := range g.Templates {
		if tpl.Name == name {
			return i
		}
	}
	return -1
}

// TestTPCDSTemplatesFeaturise checks every TPC-DS and DSB template produces
// non-empty features and at least one table.
func TestTPCDSTemplatesFeaturise(t *testing.T) {
	for _, g := range []*Generator{TPCDS(1), DSB(1)} {
		ex := features.NewExtractor(g.Cat)
		w, err := g.Workload(g.NumTemplates(), 9)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range w.Queries {
			if len(q.Info.Tables) == 0 {
				t.Errorf("%s template %s binds no tables", g.Name, g.Templates[i].Name)
			}
			if len(ex.Features(q)) == 0 {
				t.Errorf("%s template %s has no features", g.Name, g.Templates[i].Name)
			}
		}
	}
}
