package benchmarks

import (
	"fmt"
	"math/rand"

	"isum/internal/catalog"
)

// TPCDS returns a TPC-DS generator at the given scale factor: the 24-table
// retail schema with published sf=10-proportional cardinalities and 91
// templates (29 channel-parameterised families × 3 sales channels, plus 4
// channel-independent templates).
func TPCDS(sf float64) *Generator {
	cat := tpcdsCatalog(sf, 0)
	return &Generator{Name: "TPC-DS", Cat: cat, Templates: tpcdsTemplates()}
}

// dsDateLo/Hi bound the d_date_sk surrogate-key domain (1998..2003).
const (
	dsDateLo = 2450815
	dsDateHi = 2453005
)

// tpcdsCatalog builds the 24-table schema. skew > 0 produces skewed value
// distributions (used by DSB, which extends TPC-DS with skew [21]).
func tpcdsCatalog(sf float64, skew float64) *catalog.Catalog {
	cat := catalog.New()
	n := func(base float64) int64 { return int64(base * sf) }

	salesFact := func(name, prefix string, rows int64, channelCols func(t *catalog.Table)) {
		t := catalog.NewTable(name, rows)
		col(t, prefix+"sold_date_sk", catalog.TypeInt, 2191, dsDateLo, dsDateHi, skew)
		col(t, prefix+"item_sk", catalog.TypeInt, n(102000), 1, float64(n(102000)), skew)
		col(t, prefix+"promo_sk", catalog.TypeInt, n(500), 1, float64(n(500)), skew)
		col(t, prefix+"quantity", catalog.TypeInt, 100, 1, 100, skew)
		col(t, prefix+"list_price", catalog.TypeDecimal, 29800, 1, 300, skew)
		col(t, prefix+"sales_price", catalog.TypeDecimal, 29800, 0, 300, skew)
		col(t, prefix+"ext_sales_price", catalog.TypeDecimal, n(1000000), 0, 30000, skew)
		col(t, prefix+"net_profit", catalog.TypeDecimal, n(1000000), -10000, 20000, skew)
		channelCols(t)
		cat.AddTable(t)
	}

	salesFact("store_sales", "ss_", n(28800000), func(t *catalog.Table) {
		col(t, "ss_sold_time_sk", catalog.TypeInt, 86400, 0, 86399, 0)
		col(t, "ss_customer_sk", catalog.TypeInt, n(500000), 1, float64(n(500000)), skew)
		col(t, "ss_cdemo_sk", catalog.TypeInt, 1920800, 1, 1920800, skew)
		col(t, "ss_hdemo_sk", catalog.TypeInt, 7200, 1, 7200, skew)
		col(t, "ss_addr_sk", catalog.TypeInt, n(250000), 1, float64(n(250000)), skew)
		col(t, "ss_store_sk", catalog.TypeInt, n(102)/2, 1, float64(n(102)), skew)
		col(t, "ss_ticket_number", catalog.TypeInt, n(24000000), 1, float64(n(24000000)), 0)
	})
	salesFact("catalog_sales", "cs_", n(14400000), func(t *catalog.Table) {
		col(t, "cs_bill_customer_sk", catalog.TypeInt, n(500000), 1, float64(n(500000)), skew)
		col(t, "cs_bill_cdemo_sk", catalog.TypeInt, 1920800, 1, 1920800, skew)
		col(t, "cs_bill_hdemo_sk", catalog.TypeInt, 7200, 1, 7200, skew)
		col(t, "cs_bill_addr_sk", catalog.TypeInt, n(250000), 1, float64(n(250000)), skew)
		col(t, "cs_call_center_sk", catalog.TypeInt, n(24), 1, float64(n(24)), skew)
		col(t, "cs_catalog_page_sk", catalog.TypeInt, n(12000), 1, float64(n(12000)), skew)
		col(t, "cs_ship_mode_sk", catalog.TypeInt, 20, 1, 20, skew)
		col(t, "cs_warehouse_sk", catalog.TypeInt, n(10), 1, float64(n(10)), skew)
		col(t, "cs_order_number", catalog.TypeInt, n(9600000), 1, float64(n(9600000)), 0)
	})
	salesFact("web_sales", "ws_", n(7200000), func(t *catalog.Table) {
		col(t, "ws_bill_customer_sk", catalog.TypeInt, n(500000), 1, float64(n(500000)), skew)
		col(t, "ws_bill_cdemo_sk", catalog.TypeInt, 1920800, 1, 1920800, skew)
		col(t, "ws_bill_hdemo_sk", catalog.TypeInt, 7200, 1, 7200, skew)
		col(t, "ws_bill_addr_sk", catalog.TypeInt, n(250000), 1, float64(n(250000)), skew)
		col(t, "ws_web_site_sk", catalog.TypeInt, n(42), 1, float64(n(42)), skew)
		col(t, "ws_web_page_sk", catalog.TypeInt, n(200), 1, float64(n(200)), skew)
		col(t, "ws_ship_mode_sk", catalog.TypeInt, 20, 1, 20, skew)
		col(t, "ws_warehouse_sk", catalog.TypeInt, n(10), 1, float64(n(10)), skew)
		col(t, "ws_order_number", catalog.TypeInt, n(4800000), 1, float64(n(4800000)), 0)
	})

	returnsFact := func(name, prefix, custCol, amtCol string, rows int64) {
		t := catalog.NewTable(name, rows)
		col(t, prefix+"returned_date_sk", catalog.TypeInt, 2191, dsDateLo, dsDateHi, skew)
		col(t, prefix+"item_sk", catalog.TypeInt, n(102000), 1, float64(n(102000)), skew)
		col(t, custCol, catalog.TypeInt, n(500000), 1, float64(n(500000)), skew)
		col(t, prefix+"reason_sk", catalog.TypeInt, 45, 1, 45, skew)
		col(t, prefix+"return_quantity", catalog.TypeInt, 100, 1, 100, skew)
		col(t, amtCol, catalog.TypeDecimal, n(700000), 0, 29000, skew)
		cat.AddTable(t)
	}
	returnsFact("store_returns", "sr_", "sr_customer_sk", "sr_return_amt", n(2880000))
	returnsFact("catalog_returns", "cr_", "cr_returning_customer_sk", "cr_return_amount", n(1440000))
	returnsFact("web_returns", "wr_", "wr_returning_customer_sk", "wr_return_amt", n(720000))

	inv := catalog.NewTable("inventory", n(133110000))
	col(inv, "inv_date_sk", catalog.TypeInt, 2191, dsDateLo, dsDateHi, 0)
	col(inv, "inv_item_sk", catalog.TypeInt, n(102000), 1, float64(n(102000)), 0)
	col(inv, "inv_warehouse_sk", catalog.TypeInt, n(10), 1, float64(n(10)), 0)
	col(inv, "inv_quantity_on_hand", catalog.TypeInt, 1000, 0, 1000, 0)
	cat.AddTable(inv)

	dd := catalog.NewTable("date_dim", 73049)
	col(dd, "d_date_sk", catalog.TypeInt, 73049, 2415022, 2488070, 0)
	col(dd, "d_date", catalog.TypeDate, 73049, days("1900-01-02"), days("2100-01-01"), 0)
	col(dd, "d_year", catalog.TypeInt, 201, 1900, 2100, 0)
	col(dd, "d_moy", catalog.TypeInt, 12, 1, 12, 0)
	col(dd, "d_dom", catalog.TypeInt, 31, 1, 31, 0)
	col(dd, "d_qoy", catalog.TypeInt, 4, 1, 4, 0)
	col(dd, "d_month_seq", catalog.TypeInt, 2412, 0, 2411, 0)
	strCol(dd, "d_day_name", 7, 9)
	cat.AddTable(dd)

	td := catalog.NewTable("time_dim", 86400)
	col(td, "t_time_sk", catalog.TypeInt, 86400, 0, 86399, 0)
	col(td, "t_hour", catalog.TypeInt, 24, 0, 23, 0)
	col(td, "t_minute", catalog.TypeInt, 60, 0, 59, 0)
	strCol(td, "t_meal_time", 4, 9)
	cat.AddTable(td)

	item := catalog.NewTable("item", n(102000))
	col(item, "i_item_sk", catalog.TypeInt, n(102000), 1, float64(n(102000)), 0)
	strCol(item, "i_item_id", n(51000), 16)
	strCol(item, "i_category", 10, 12)
	strCol(item, "i_class", 100, 12)
	strCol(item, "i_brand", 714, 22)
	col(item, "i_manufact_id", catalog.TypeInt, 1000, 1, 1000, 0)
	col(item, "i_manager_id", catalog.TypeInt, 100, 1, 100, 0)
	col(item, "i_current_price", catalog.TypeDecimal, 9000, 0.09, 99.99, 0)
	strCol(item, "i_color", 92, 10)
	strCol(item, "i_size", 7, 12)
	cat.AddTable(item)

	cust := catalog.NewTable("customer", n(500000))
	col(cust, "c_customer_sk", catalog.TypeInt, n(500000), 1, float64(n(500000)), 0)
	strCol(cust, "c_customer_id", n(500000), 16)
	col(cust, "c_current_cdemo_sk", catalog.TypeInt, 1920800, 1, 1920800, 0)
	col(cust, "c_current_hdemo_sk", catalog.TypeInt, 7200, 1, 7200, 0)
	col(cust, "c_current_addr_sk", catalog.TypeInt, n(250000), 1, float64(n(250000)), 0)
	col(cust, "c_first_sales_date_sk", catalog.TypeInt, 2191, dsDateLo, dsDateHi, 0)
	col(cust, "c_birth_year", catalog.TypeInt, 69, 1924, 1992, 0)
	col(cust, "c_birth_month", catalog.TypeInt, 12, 1, 12, 0)
	strCol(cust, "c_preferred_cust_flag", 2, 1)
	cat.AddTable(cust)

	ca := catalog.NewTable("customer_address", n(250000))
	col(ca, "ca_address_sk", catalog.TypeInt, n(250000), 1, float64(n(250000)), 0)
	strCol(ca, "ca_state", 51, 2)
	strCol(ca, "ca_city", 700, 15)
	strCol(ca, "ca_county", 1850, 20)
	strCol(ca, "ca_zip", 10000, 5)
	strCol(ca, "ca_country", 1, 13)
	col(ca, "ca_gmt_offset", catalog.TypeDecimal, 6, -10, -5, 0)
	cat.AddTable(ca)

	cd := catalog.NewTable("customer_demographics", 1920800)
	col(cd, "cd_demo_sk", catalog.TypeInt, 1920800, 1, 1920800, 0)
	strCol(cd, "cd_gender", 2, 1)
	strCol(cd, "cd_marital_status", 5, 1)
	strCol(cd, "cd_education_status", 7, 16)
	col(cd, "cd_purchase_estimate", catalog.TypeInt, 20, 500, 10000, 0)
	strCol(cd, "cd_credit_rating", 4, 10)
	col(cd, "cd_dep_count", catalog.TypeInt, 7, 0, 6, 0)
	cat.AddTable(cd)

	hd := catalog.NewTable("household_demographics", 7200)
	col(hd, "hd_demo_sk", catalog.TypeInt, 7200, 1, 7200, 0)
	col(hd, "hd_income_band_sk", catalog.TypeInt, 20, 1, 20, 0)
	strCol(hd, "hd_buy_potential", 6, 10)
	col(hd, "hd_dep_count", catalog.TypeInt, 10, 0, 9, 0)
	col(hd, "hd_vehicle_count", catalog.TypeInt, 6, -1, 4, 0)
	cat.AddTable(hd)

	store := catalog.NewTable("store", n(102))
	col(store, "s_store_sk", catalog.TypeInt, n(102), 1, float64(n(102)), 0)
	strCol(store, "s_store_name", n(102)/2, 10)
	strCol(store, "s_state", 9, 2)
	strCol(store, "s_city", 20, 15)
	strCol(store, "s_county", 9, 20)
	col(store, "s_number_employees", catalog.TypeInt, 100, 200, 300, 0)
	col(store, "s_floor_space", catalog.TypeInt, n(102), 5000000, 10000000, 0)
	cat.AddTable(store)

	cc := catalog.NewTable("call_center", n(24))
	col(cc, "cc_call_center_sk", catalog.TypeInt, n(24), 1, float64(n(24)), 0)
	strCol(cc, "cc_name", n(24), 12)
	strCol(cc, "cc_class", 3, 6)
	strCol(cc, "cc_county", 8, 20)
	cat.AddTable(cc)

	cp := catalog.NewTable("catalog_page", n(12000))
	col(cp, "cp_catalog_page_sk", catalog.TypeInt, n(12000), 1, float64(n(12000)), 0)
	col(cp, "cp_catalog_number", catalog.TypeInt, 109, 1, 109, 0)
	col(cp, "cp_catalog_page_number", catalog.TypeInt, 188, 1, 188, 0)
	cat.AddTable(cp)

	ws := catalog.NewTable("web_site", n(42))
	col(ws, "web_site_sk", catalog.TypeInt, n(42), 1, float64(n(42)), 0)
	strCol(ws, "web_name", n(42)/2, 10)
	strCol(ws, "web_class", 5, 10)
	cat.AddTable(ws)

	wp := catalog.NewTable("web_page", n(200))
	col(wp, "wp_web_page_sk", catalog.TypeInt, n(200), 1, float64(n(200)), 0)
	col(wp, "wp_char_count", catalog.TypeInt, 200, 100, 8000, 0)
	strCol(wp, "wp_type", 7, 10)
	cat.AddTable(wp)

	wh := catalog.NewTable("warehouse", n(10))
	col(wh, "w_warehouse_sk", catalog.TypeInt, n(10), 1, float64(n(10)), 0)
	col(wh, "w_warehouse_sq_ft", catalog.TypeInt, n(10), 50000, 1000000, 0)
	strCol(wh, "w_state", 9, 2)
	cat.AddTable(wh)

	sm := catalog.NewTable("ship_mode", 20)
	col(sm, "sm_ship_mode_sk", catalog.TypeInt, 20, 1, 20, 0)
	strCol(sm, "sm_type", 6, 30)
	strCol(sm, "sm_carrier", 20, 20)
	cat.AddTable(sm)

	rs := catalog.NewTable("reason", 45)
	col(rs, "r_reason_sk", catalog.TypeInt, 45, 1, 45, 0)
	strCol(rs, "r_reason_desc", 45, 100)
	cat.AddTable(rs)

	promo := catalog.NewTable("promotion", n(500))
	col(promo, "p_promo_sk", catalog.TypeInt, n(500), 1, float64(n(500)), 0)
	strCol(promo, "p_channel_email", 2, 1)
	strCol(promo, "p_channel_tv", 2, 1)
	col(promo, "p_response_target", catalog.TypeInt, 1, 1, 1, 0)
	cat.AddTable(promo)

	ib := catalog.NewTable("income_band", 20)
	col(ib, "ib_income_band_sk", catalog.TypeInt, 20, 1, 20, 0)
	col(ib, "ib_lower_bound", catalog.TypeInt, 20, 0, 190001, 0)
	col(ib, "ib_upper_bound", catalog.TypeInt, 20, 10000, 200000, 0)
	cat.AddTable(ib)

	return cat
}

// dsChannel maps channel-generic template families onto a concrete sales
// channel's fact/returns tables and columns.
type dsChannel struct {
	name string
	fact string
	ret  string

	dateSK, itemSK, custSK, cdemoSK, hdemoSK, addrSK, promoSK string
	qty, listPrice, salesPrice, ext, profit                   string

	retDateSK, retItemSK, retCustSK, retReasonSK, retQty, retAmt string

	// Channel-specific dimension (store / call_center / web_site).
	chanSK, chanDim, chanDimKey, chanGroupCol string
}

func dsChannels() [3]dsChannel {
	return [3]dsChannel{
		{
			name: "store", fact: "store_sales", ret: "store_returns",
			dateSK: "ss_sold_date_sk", itemSK: "ss_item_sk", custSK: "ss_customer_sk",
			cdemoSK: "ss_cdemo_sk", hdemoSK: "ss_hdemo_sk", addrSK: "ss_addr_sk", promoSK: "ss_promo_sk",
			qty: "ss_quantity", listPrice: "ss_list_price", salesPrice: "ss_sales_price",
			ext: "ss_ext_sales_price", profit: "ss_net_profit",
			retDateSK: "sr_returned_date_sk", retItemSK: "sr_item_sk", retCustSK: "sr_customer_sk",
			retReasonSK: "sr_reason_sk", retQty: "sr_return_quantity", retAmt: "sr_return_amt",
			chanSK: "ss_store_sk", chanDim: "store", chanDimKey: "s_store_sk", chanGroupCol: "s_state",
		},
		{
			name: "catalog", fact: "catalog_sales", ret: "catalog_returns",
			dateSK: "cs_sold_date_sk", itemSK: "cs_item_sk", custSK: "cs_bill_customer_sk",
			cdemoSK: "cs_bill_cdemo_sk", hdemoSK: "cs_bill_hdemo_sk", addrSK: "cs_bill_addr_sk", promoSK: "cs_promo_sk",
			qty: "cs_quantity", listPrice: "cs_list_price", salesPrice: "cs_sales_price",
			ext: "cs_ext_sales_price", profit: "cs_net_profit",
			retDateSK: "cr_returned_date_sk", retItemSK: "cr_item_sk", retCustSK: "cr_returning_customer_sk",
			retReasonSK: "cr_reason_sk", retQty: "cr_return_quantity", retAmt: "cr_return_amount",
			chanSK: "cs_call_center_sk", chanDim: "call_center", chanDimKey: "cc_call_center_sk", chanGroupCol: "cc_county",
		},
		{
			name: "web", fact: "web_sales", ret: "web_returns",
			dateSK: "ws_sold_date_sk", itemSK: "ws_item_sk", custSK: "ws_bill_customer_sk",
			cdemoSK: "ws_bill_cdemo_sk", hdemoSK: "ws_bill_hdemo_sk", addrSK: "ws_bill_addr_sk", promoSK: "ws_promo_sk",
			qty: "ws_quantity", listPrice: "ws_list_price", salesPrice: "ws_sales_price",
			ext: "ws_ext_sales_price", profit: "ws_net_profit",
			retDateSK: "wr_returned_date_sk", retItemSK: "wr_item_sk", retCustSK: "wr_returning_customer_sk",
			retReasonSK: "wr_reason_sk", retQty: "wr_return_quantity", retAmt: "wr_return_amt",
			chanSK: "ws_web_site_sk", chanDim: "web_site", chanDimKey: "web_site_sk", chanGroupCol: "web_class",
		},
	}
}

var dsCategories = []string{"Books", "Children", "Electronics", "Home", "Jewelry",
	"Men", "Music", "Shoes", "Sports", "Women"}
var dsStates = []string{"TX", "CA", "NY", "OH", "GA", "IL", "MI", "WA", "TN"}
var dsGenders = []string{"M", "F"}
var dsMarital = []string{"M", "S", "D", "W", "U"}
var dsEducation = []string{"Primary", "Secondary", "College", "2 yr Degree",
	"4 yr Degree", "Advanced Degree", "Unknown"}
var dsBuyPotential = []string{"0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"}
var dsColors = []string{"red", "blue", "green", "yellow", "black", "white", "purple", "orange"}

// dateSKRange returns a random [lo, hi] window in the d_date_sk domain.
func dateSKRange(r *rand.Rand, spanDays int) (int, int) {
	lo := intIn(r, dsDateLo, dsDateHi-spanDays)
	return lo, lo + spanDays
}

// dsFamily builds one channel-parameterised template.
type dsFamily struct {
	name  string
	class QueryClass
	gen   func(ch dsChannel, r *rand.Rand) string
}

func tpcdsFamilies() []dsFamily {
	return []dsFamily{
		{"date_item_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			lo, hi := dateSKRange(r, 30)
			return fmt.Sprintf(`SELECT %s, %s, %s FROM %s, item
				WHERE %s = i_item_sk AND i_category = '%s'
				AND %s BETWEEN %d AND %d AND %s > %d`,
				ch.itemSK, ch.qty, ch.ext, ch.fact, ch.itemSK, pick(r, dsCategories...),
				ch.dateSK, lo, hi, ch.qty, intIn(r, 80, 95))
		}},
		{"category_revenue", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, SUM(%s) AS revenue FROM %s, item, date_dim
				WHERE %s = i_item_sk AND %s = d_date_sk AND d_year = %d AND d_moy = %d
				GROUP BY i_category ORDER BY revenue DESC`,
				ch.ext, ch.fact, ch.itemSK, ch.dateSK, intIn(r, 1998, 2002), intIn(r, 1, 12))
		}},
		{"state_city_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT ca_state, ca_city, SUM(%s) AS total FROM %s, customer, customer_address, date_dim
				WHERE %s = c_customer_sk AND c_current_addr_sk = ca_address_sk
				AND %s = d_date_sk AND d_year = %d AND ca_state = '%s'
				GROUP BY ca_state, ca_city ORDER BY total DESC LIMIT 100`,
				ch.ext, ch.fact, ch.custSK, ch.dateSK, intIn(r, 1998, 2002), pick(r, dsStates...))
		}},
		{"demographics_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s FROM %s, customer_demographics
				WHERE %s = cd_demo_sk AND cd_gender = '%s' AND cd_marital_status = '%s'
				AND cd_education_status = '%s'`,
				ch.qty, ch.salesPrice, ch.fact, ch.cdemoSK,
				pick(r, dsGenders...), pick(r, dsMarital...), pick(r, dsEducation...))
		}},
		{"household_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT hd_buy_potential, COUNT(*) AS cnt, AVG(%s) AS avg_qty
				FROM %s, household_demographics
				WHERE %s = hd_demo_sk AND hd_dep_count = %d
				GROUP BY hd_buy_potential ORDER BY cnt DESC`,
				ch.qty, ch.fact, ch.hdemoSK, intIn(r, 0, 9))
		}},
		{"top_customers", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			lo, hi := dateSKRange(r, 365)
			return fmt.Sprintf(`SELECT c_customer_id, SUM(%s) AS spend FROM %s, customer
				WHERE %s = c_customer_sk AND %s BETWEEN %d AND %d
				GROUP BY c_customer_id ORDER BY spend DESC LIMIT 100`,
				ch.ext, ch.fact, ch.custSK, ch.dateSK, lo, hi)
		}},
		{"promotion_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s FROM %s, promotion
				WHERE %s = p_promo_sk AND p_channel_email = '%s'
				AND %s BETWEEN %d AND %d`,
				ch.ext, ch.profit, ch.fact, ch.promoSK, pick(r, "Y", "N"),
				ch.listPrice, intIn(r, 200, 250), intIn(r, 280, 300))
		}},
		{"returns_reason", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			lo, hi := dateSKRange(r, 90)
			return fmt.Sprintf(`SELECT r_reason_desc, SUM(%s) AS returned, COUNT(*) AS cnt
				FROM %s, reason, date_dim
				WHERE %s = r_reason_sk AND %s = d_date_sk AND d_date_sk BETWEEN %d AND %d
				GROUP BY r_reason_desc ORDER BY returned DESC`,
				ch.retAmt, ch.ret, ch.retReasonSK, ch.retDateSK, lo, hi)
		}},
		{"above_avg_quantity", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s FROM %s, item
				WHERE %s = i_item_sk AND i_category = '%s'
				AND %s > (SELECT AVG(%s) FROM %s WHERE %s = i_item_sk)`,
				ch.itemSK, ch.qty, ch.fact, ch.itemSK, pick(r, dsCategories...),
				ch.qty, ch.qty, ch.fact, ch.itemSK)
		}},
		{"yoy_cte", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			y := intIn(r, 1999, 2001)
			return fmt.Sprintf(`WITH year_total AS (
				SELECT c_customer_id AS cid, d_year AS dyear, SUM(%s) AS total
				FROM %s, customer, date_dim
				WHERE %s = c_customer_sk AND %s = d_date_sk AND d_year BETWEEN %d AND %d
				GROUP BY c_customer_id, d_year)
				SELECT cid, SUM(total) FROM year_total GROUP BY cid ORDER BY cid LIMIT 100`,
				ch.ext, ch.fact, ch.custSK, ch.dateSK, y, y+1)
		}},
		{"channel_dim_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, SUM(%s) AS profit FROM %s, %s, date_dim
				WHERE %s = %s AND %s = d_date_sk AND d_year = %d AND d_qoy = %d
				GROUP BY %s ORDER BY profit DESC`,
				ch.chanGroupCol, ch.profit, ch.fact, ch.chanDim,
				ch.chanSK, ch.chanDimKey, ch.dateSK, intIn(r, 1998, 2002), intIn(r, 1, 4),
				ch.chanGroupCol)
		}},
		{"color_price_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			p := intIn(r, 30, 80)
			return fmt.Sprintf(`SELECT i_item_id, i_color, %s FROM %s, item
				WHERE %s = i_item_sk AND i_color IN ('%s', '%s')
				AND i_current_price BETWEEN %d AND %d`,
				ch.salesPrice, ch.fact, ch.itemSK,
				pick(r, dsColors...), pick(r, dsColors...), p, p+10)
		}},
		{"sales_returns_join", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, SUM(%s) AS sold, SUM(%s) AS returned
				FROM %s, %s, item
				WHERE %s = %s AND %s = i_item_sk AND i_category = '%s'
				GROUP BY i_category`,
				ch.qty, ch.retQty, ch.fact, ch.ret,
				ch.itemSK, ch.retItemSK, ch.itemSK, pick(r, dsCategories...))
		}},
		{"cross_channel_exists", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			other := dsChannels()[(channelIndex(ch)+1)%3]
			lo, hi := dateSKRange(r, 60)
			return fmt.Sprintf(`SELECT c_customer_id FROM customer
				WHERE EXISTS (SELECT 1 FROM %s WHERE %s = c_customer_sk AND %s BETWEEN %d AND %d)
				AND EXISTS (SELECT 1 FROM %s WHERE %s = c_customer_sk)
				ORDER BY c_customer_id LIMIT 100`,
				ch.fact, ch.custSK, ch.dateSK, lo, hi, other.fact, other.custSK)
		}},
		{"monthly_distinct", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_moy, COUNT(DISTINCT %s) AS custs FROM %s, date_dim
				WHERE %s = d_date_sk AND d_year = %d GROUP BY d_moy ORDER BY d_moy`,
				ch.custSK, ch.fact, ch.dateSK, intIn(r, 1998, 2002))
		}},
		{"point_lookup", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s, %s FROM %s WHERE %s = %d`,
				ch.itemSK, ch.qty, ch.ext, ch.fact, ch.custSK, intIn(r, 1, 5000000))
		}},
		{"brand_manager_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_brand, SUM(%s) AS revenue FROM %s, item, date_dim
				WHERE %s = i_item_sk AND %s = d_date_sk AND i_manager_id = %d AND d_moy = %d AND d_year = %d
				GROUP BY i_brand ORDER BY revenue DESC LIMIT 100`,
				ch.ext, ch.fact, ch.itemSK, ch.dateSK, intIn(r, 1, 100), intIn(r, 1, 12), intIn(r, 1998, 2002))
		}},
		{"in_expensive_items", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s FROM %s
				WHERE %s IN (SELECT i_item_sk FROM item WHERE i_current_price > %d AND i_category = '%s')
				AND %s > %d`,
				ch.itemSK, ch.ext, ch.fact, ch.itemSK, intIn(r, 80, 95), pick(r, dsCategories...),
				ch.qty, intIn(r, 50, 90))
		}},
		{"having_sum", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, SUM(%s) AS total FROM %s, date_dim
				WHERE %s = d_date_sk AND d_year = %d
				GROUP BY %s HAVING SUM(%s) > %d ORDER BY total DESC LIMIT 100`,
				ch.itemSK, ch.qty, ch.fact, ch.dateSK, intIn(r, 1998, 2002),
				ch.itemSK, ch.qty, intIn(r, 300, 500))
		}},
		{"purchase_estimate_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT cd_credit_rating, COUNT(*) AS cnt FROM %s, customer_demographics
				WHERE %s = cd_demo_sk AND cd_purchase_estimate BETWEEN %d AND %d
				GROUP BY cd_credit_rating`,
				ch.fact, ch.cdemoSK, intIn(r, 500, 5000), intIn(r, 5001, 10000))
		}},
		{"gmt_state_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, ca_city FROM %s, customer_address
				WHERE %s = ca_address_sk AND ca_gmt_offset = %d AND ca_state = '%s'`,
				ch.ext, ch.fact, ch.addrSK, -intIn(r, 5, 10), pick(r, dsStates...))
		}},
		{"income_band_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT ib_lower_bound, ib_upper_bound, COUNT(*) AS cnt
				FROM %s, household_demographics, income_band
				WHERE %s = hd_demo_sk AND hd_income_band_sk = ib_income_band_sk
				AND ib_lower_bound >= %d
				GROUP BY ib_lower_bound, ib_upper_bound ORDER BY cnt DESC`,
				ch.fact, ch.hdemoSK, intIn(r, 0, 150000))
		}},
		{"above_category_avg", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			cat := pick(r, dsCategories...)
			return fmt.Sprintf(`SELECT i_item_id, %s FROM %s, item
				WHERE %s = i_item_sk AND i_category = '%s'
				AND %s > (SELECT AVG(%s) * 1.2 FROM %s, item
					WHERE %s = i_item_sk AND i_category = '%s')`,
				ch.ext, ch.fact, ch.itemSK, cat, ch.ext, ch.ext, ch.fact, ch.itemSK, cat)
		}},
		{"birth_cohort_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			y := intIn(r, 1924, 1985)
			return fmt.Sprintf(`SELECT c_birth_year, SUM(%s) AS total FROM %s, customer
				WHERE %s = c_customer_sk AND c_birth_year BETWEEN %d AND %d AND c_birth_month = %d
				GROUP BY c_birth_year ORDER BY c_birth_year`,
				ch.ext, ch.fact, ch.custSK, y, y+5, intIn(r, 1, 12))
		}},
		{"fact_only_scan", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT %s, %s, %s FROM %s
				WHERE %s BETWEEN %d AND %d AND %s > %d AND %s > %d`,
				ch.itemSK, ch.qty, ch.profit, ch.fact,
				ch.salesPrice, intIn(r, 100, 150), intIn(r, 250, 290),
				ch.qty, intIn(r, 60, 90), ch.profit, intIn(r, 5000, 15000))
		}},
		{"quarterly_rollup", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_year, d_qoy, SUM(%s) AS revenue FROM %s, date_dim
				WHERE %s = d_date_sk AND d_year BETWEEN %d AND %d
				GROUP BY d_year, d_qoy ORDER BY d_year, d_qoy`,
				ch.ext, ch.fact, ch.dateSK, 1998, intIn(r, 1999, 2002))
		}},
		{"returned_then_bought", ClassComplex, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT c_customer_id FROM customer, %s
				WHERE %s = c_customer_sk AND %s > %d
				AND c_customer_sk IN (SELECT %s FROM %s WHERE %s > %d)
				ORDER BY c_customer_id LIMIT 100`,
				ch.ret, ch.retCustSK, ch.retAmt, intIn(r, 1000, 5000),
				ch.custSK, ch.fact, ch.ext, intIn(r, 10000, 20000))
		}},
		{"class_profit_agg", ClassAggregate, func(ch dsChannel, r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_class, AVG(%s) AS avg_profit FROM %s, item
				WHERE %s = i_item_sk AND i_category IN ('%s', '%s')
				GROUP BY i_class ORDER BY avg_profit DESC`,
				ch.profit, ch.fact, ch.itemSK, pick(r, dsCategories...), pick(r, dsCategories...))
		}},
		{"preferred_flag_spj", ClassSPJ, func(ch dsChannel, r *rand.Rand) string {
			lo, hi := dateSKRange(r, 14)
			return fmt.Sprintf(`SELECT %s, c_customer_id FROM %s, customer
				WHERE %s = c_customer_sk AND c_preferred_cust_flag = '%s'
				AND %s BETWEEN %d AND %d`,
				ch.ext, ch.fact, ch.custSK, pick(r, "Y", "N"), ch.dateSK, lo, hi)
		}},
	}
}

func channelIndex(ch dsChannel) int {
	switch ch.name {
	case "store":
		return 0
	case "catalog":
		return 1
	default:
		return 2
	}
}

// tpcdsSingles are the 4 channel-independent templates completing the 91.
func tpcdsSingles() []Template {
	return []Template{
		{Name: "inv_by_warehouse", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			lo, hi := dateSKRange(r, 30)
			return fmt.Sprintf(`SELECT w_state, SUM(inv_quantity_on_hand) AS qoh FROM inventory, warehouse
				WHERE inv_warehouse_sk = w_warehouse_sk AND inv_date_sk BETWEEN %d AND %d
				GROUP BY w_state ORDER BY qoh DESC`, lo, hi)
		}},
		{Name: "inv_item_category", Class: ClassAggregate, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT i_category, AVG(inv_quantity_on_hand) AS aqoh FROM inventory, item
				WHERE inv_item_sk = i_item_sk AND i_current_price > %d
				GROUP BY i_category HAVING AVG(inv_quantity_on_hand) > %d`,
				intIn(r, 50, 90), intIn(r, 400, 600))
		}},
		{Name: "date_dim_lookup", Class: ClassSPJ, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT d_date_sk, d_date FROM date_dim
				WHERE d_year = %d AND d_moy = %d AND d_dom = %d`,
				intIn(r, 1998, 2002), intIn(r, 1, 12), intIn(r, 1, 28))
		}},
		{Name: "never_purchased", Class: ClassComplex, Gen: func(r *rand.Rand) string {
			return fmt.Sprintf(`SELECT c_customer_id FROM customer, customer_address
				WHERE c_current_addr_sk = ca_address_sk AND ca_state = '%s'
				AND NOT EXISTS (SELECT 1 FROM store_sales WHERE ss_customer_sk = c_customer_sk)
				ORDER BY c_customer_id LIMIT 100`, pick(r, dsStates...))
		}},
	}
}

// tpcdsTemplates assembles the 91 templates: 29 families × 3 channels + 4.
func tpcdsTemplates() []Template {
	var out []Template
	for _, fam := range tpcdsFamilies() {
		fam := fam
		for _, ch := range dsChannels() {
			ch := ch
			out = append(out, Template{
				Name:  fam.name + "_" + ch.name,
				Class: fam.class,
				Gen:   func(r *rand.Rand) string { return fam.gen(ch, r) },
			})
		}
	}
	out = append(out, tpcdsSingles()...)
	return out
}
