package benchmarks

import "testing"

func TestFromName(t *testing.T) {
	cases := map[string]string{
		"tpch":   "TPC-H",
		"TPC-H":  "TPC-H",
		"tpc_ds": "TPC-DS",
		"TPCDS":  "TPC-DS",
		"dsb":    "DSB",
		"Real-M": "Real-M",
		"realm":  "Real-M",
	}
	for in, want := range cases {
		g, err := FromName(in, 1, 1)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if g.Name != want {
			t.Fatalf("%q -> %q, want %q", in, g.Name, want)
		}
	}
	if _, err := FromName("oracle", 1, 1); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestNormalizeName(t *testing.T) {
	if normalizeName("TPC-H ") != "tpch" || normalizeName("real_m") != "realm" {
		t.Fatal("normalisation broken")
	}
}
