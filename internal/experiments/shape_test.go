package experiments

// Shape tests for the heavier experiments: each asserts the qualitative
// claim the paper draws from the corresponding figure, in fast mode. They
// are skipped under -short.

import (
	"math"
	"testing"
)

func TestFig9bMoreIndexesHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9b is expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig9b, env)
	if len(tabs) != 4 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// For ISUM (column 5), improvement at the largest configuration size
	// should be at least that of the smallest (minus noise).
	for _, tab := range tabs {
		first := parseF(t, tab.Rows[0][5])
		last := parseF(t, tab.Rows[len(tab.Rows)-1][5])
		if last < first-10 {
			t.Errorf("%s: ISUM degraded with more indexes: %f -> %f", tab.Title, first, last)
		}
	}
}

func TestFig10BudgetsRespectOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig10, env)
	for _, tab := range tabs {
		// Improvements stay in [0, 100] and ISUM stays competitive at 3x.
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				v := parseF(t, cell)
				if v < -1 || v > 100 {
					t.Fatalf("%s: out-of-range improvement %v", tab.Title, row)
				}
			}
		}
		last := tab.Rows[len(tab.Rows)-1]
		isum := parseF(t, last[5])
		if isum <= 0 {
			t.Errorf("%s: ISUM no improvement at 3x budget", tab.Title)
		}
	}
}

func TestFig11SummaryFasterThanAllPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 is expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig11, env)
	if len(tabs) != 4 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// Time tables are at indices 1 and 3; columns: n, all-pairs, k-medoid,
	// summary. At the largest n, summary must not be the slowest, and
	// all-pairs time must grow superlinearly vs the smallest n.
	for _, ti := range []int{1, 3} {
		tab := tabs[ti]
		first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
		nRatio := parseF(t, last[0]) / parseF(t, first[0])
		apRatio := parseF(t, last[1]) / math.Max(parseF(t, first[1]), 1e-6)
		if apRatio < nRatio {
			t.Logf("%s: all-pairs scaled sublinearly at these sizes (ratio %.1f vs n %.1f)",
				tab.Title, apRatio, nRatio)
		}
		summary := parseF(t, last[3])
		allPairs := parseF(t, last[1])
		if summary > allPairs*2 {
			t.Errorf("%s: summary (%.1fms) much slower than all-pairs (%.1fms)",
				tab.Title, summary, allPairs)
		}
	}
	// Quality: summary within reach of all-pairs at the largest n.
	for _, ti := range []int{0, 2} {
		tab := tabs[ti]
		last := tab.Rows[len(tab.Rows)-1]
		ap, sum := parseF(t, last[1]), parseF(t, last[3])
		if sum < ap*0.6 {
			t.Errorf("%s: summary quality %f too far below all-pairs %f", tab.Title, sum, ap)
		}
	}
}

func TestFig12InstancesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 is expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig12, env)
	if len(tabs) != 4 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// 12a: ISUM (column 5) should not collapse as instances grow.
	ta := tabs[0]
	for _, row := range ta.Rows {
		if v := parseF(t, row[5]); v <= 0 {
			t.Errorf("Fig12a: ISUM collapsed: %v", row)
		}
	}
	// 12b-d exist for each class and have the full sweep.
	for _, tab := range tabs[1:] {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty", tab.Title)
		}
	}
}

func TestFig14WeighingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("fig14 is moderately expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig14, env)
	rows := tabs[0].Rows
	// At the largest k, some weighing strategy should beat "No Weighing"
	// (the paper's Fig. 14 claim), and template weighing should be at least
	// competitive with selection-time benefits.
	last := rows[len(rows)-1]
	noW := parseF(t, last[1])
	best := math.Max(math.Max(parseF(t, last[2]), parseF(t, last[3])), parseF(t, last[4]))
	if best < noW-5 {
		t.Errorf("weighing should help at large k: none=%f best=%f", noW, best)
	}
}
