package experiments

import (
	"isum/internal/advisor"
	"isum/internal/core"
	"isum/internal/features"
)

// The "extra-" experiments are ablations of this implementation's design
// choices (DESIGN.md §5) beyond the paper's own figures.

// ExtraNormAblation compares feature-normalisation modes: our divide-by-max
// default, the paper-literal max−min denominator, and no normalisation.
func ExtraNormAblation(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	w, o, err := env.Workload("TPC-H")
	if err != nil {
		return nil, err
	}
	aopts, err := env.AdvisorOptions("TPC-H")
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name string
		m    features.NormMode
	}{
		{"divide-by-max (default)", features.NormMax},
		{"paper max-min", features.NormMinMaxPaper},
		{"none", features.NormNone},
	}
	t := &Table{
		Title:   "Extra: feature-normalisation ablation (TPC-H)",
		Columns: []string{"k", modes[0].name, modes[1].name, modes[2].name},
	}
	for _, k := range env.Cfg.KSweep(w.Len()) {
		row := []any{k}
		for _, m := range modes {
			opts := core.DefaultOptions()
			opts.Norm = m.m
			pct, err := RunPipeline(ctx, o, w, core.New(opts), k, aopts)
			if err != nil {
				return nil, err
			}
			row = append(row, pct)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// ExtraAdvisorAblation ablates the DTA-style advisor's covering-index and
// index-merging features when tuning an ISUM-compressed workload.
func ExtraAdvisorAblation(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	w, o, err := env.Workload("TPC-H")
	if err != nil {
		return nil, err
	}
	k := halfSqrt(w.Len())
	comp := core.New(core.DefaultOptions())
	res, err := comp.CompressContext(ctx, w, k)
	if err != nil {
		return nil, err
	}
	if res.Partial {
		return nil, ctxError(ctx)
	}
	cw := w.WeightedSubset(res.Indices, res.Weights)

	variants := []struct {
		name     string
		includes bool
		merging  bool
	}{
		{"full (includes+merging)", true, true},
		{"no merging", true, false},
		{"no includes", false, true},
		{"neither", false, false},
	}
	t := &Table{
		Title:   "Extra: advisor feature ablation (TPC-H, ISUM-compressed)",
		Columns: []string{"variant", "improvement %", "indexes", "configs explored"},
	}
	for _, v := range variants {
		aopts, err := env.AdvisorOptions("TPC-H")
		if err != nil {
			return nil, err
		}
		aopts.EnableIncludes = v.includes
		aopts.EnableMerging = v.merging
		tuned, err := advisor.New(o, aopts).TuneContext(ctx, cw)
		if err != nil {
			return nil, err
		}
		if tuned.Partial {
			return nil, ctxError(ctx)
		}
		pct, _, _, err := evaluate(ctx, o, w, tuned.Config)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, pct, tuned.Config.Len(), tuned.ConfigsExplored)
	}
	return []*Table{t}, nil
}

// ExtraIncremental measures the incremental compressor (Section 10) against
// one-shot compression at equal pool size.
func ExtraIncremental(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	name := "TPC-DS"
	g, err := env.Generator(name)
	if err != nil {
		return nil, err
	}
	n := env.Cfg.WorkloadSize(name)
	w, err := g.Workload(n, env.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	o := env.freshOptimizer(g)
	if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
		return nil, err
	}
	aopts, err := env.AdvisorOptions(name)
	if err != nil {
		return nil, err
	}
	k := halfSqrt(n)
	batches := 5

	t := &Table{
		Title:   "Extra: incremental vs one-shot compression (TPC-DS)",
		Columns: []string{"batch", "seen", "incremental improvement %", "one-shot improvement %"},
	}
	ic := core.NewIncremental(g.Cat, core.DefaultOptions(), k)
	per := n / batches
	oneShot := core.New(core.DefaultOptions())
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = n
		}
		ic.Observe(w.Queries[lo:hi])
		seen := w.Subset(rangeInts(0, hi))
		incTuned, err := advisorTune(ctx, o, ic.Pool(), aopts)
		if err != nil {
			return nil, err
		}
		incPct, _, _, err := evaluate(ctx, o, seen, incTuned)
		if err != nil {
			return nil, err
		}
		osRes, err := oneShot.CompressContext(ctx, seen, k)
		if err != nil {
			return nil, err
		}
		if osRes.Partial {
			return nil, ctxError(ctx)
		}
		osTuned, err := advisorTune(ctx, o, seen.WeightedSubset(osRes.Indices, osRes.Weights), aopts)
		if err != nil {
			return nil, err
		}
		osPct, _, _, err := evaluate(ctx, o, seen, osTuned)
		if err != nil {
			return nil, err
		}
		t.AddRow(b+1, hi, incPct, osPct)
	}
	return []*Table{t}, nil
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
