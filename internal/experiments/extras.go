package experiments

import (
	"isum/internal/advisor"
	"isum/internal/core"
	"isum/internal/features"
)

// The "extra-" experiments are ablations of this implementation's design
// choices (DESIGN.md §5) beyond the paper's own figures.

// ExtraNormAblation compares feature-normalisation modes: our divide-by-max
// default, the paper-literal max−min denominator, and no normalisation.
func ExtraNormAblation(env *Env) []*Table {
	w, o := env.Workload("TPC-H")
	aopts := env.AdvisorOptions("TPC-H")
	modes := []struct {
		name string
		m    features.NormMode
	}{
		{"divide-by-max (default)", features.NormMax},
		{"paper max-min", features.NormMinMaxPaper},
		{"none", features.NormNone},
	}
	t := &Table{
		Title:   "Extra: feature-normalisation ablation (TPC-H)",
		Columns: []string{"k", modes[0].name, modes[1].name, modes[2].name},
	}
	for _, k := range env.Cfg.KSweep(w.Len()) {
		row := []any{k}
		for _, m := range modes {
			opts := core.DefaultOptions()
			opts.Norm = m.m
			row = append(row, RunPipeline(o, w, core.New(opts), k, aopts))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// ExtraAdvisorAblation ablates the DTA-style advisor's covering-index and
// index-merging features when tuning an ISUM-compressed workload.
func ExtraAdvisorAblation(env *Env) []*Table {
	w, o := env.Workload("TPC-H")
	k := halfSqrt(w.Len())
	comp := core.New(core.DefaultOptions())
	res := comp.Compress(w, k)
	cw := w.WeightedSubset(res.Indices, res.Weights)

	variants := []struct {
		name     string
		includes bool
		merging  bool
	}{
		{"full (includes+merging)", true, true},
		{"no merging", true, false},
		{"no includes", false, true},
		{"neither", false, false},
	}
	t := &Table{
		Title:   "Extra: advisor feature ablation (TPC-H, ISUM-compressed)",
		Columns: []string{"variant", "improvement %", "indexes", "configs explored"},
	}
	for _, v := range variants {
		aopts := env.AdvisorOptions("TPC-H")
		aopts.EnableIncludes = v.includes
		aopts.EnableMerging = v.merging
		tuned := advisor.New(o, aopts).Tune(cw)
		pct, _, _ := advisor.EvaluateImprovement(o, w, tuned.Config)
		t.AddRow(v.name, pct, tuned.Config.Len(), tuned.ConfigsExplored)
	}
	return []*Table{t}
}

// ExtraIncremental measures the incremental compressor (Section 10) against
// one-shot compression at equal pool size.
func ExtraIncremental(env *Env) []*Table {
	name := "TPC-DS"
	g := env.Generator(name)
	n := env.Cfg.WorkloadSize(name)
	w, err := g.Workload(n, env.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	o := env.freshOptimizer(g)
	o.FillCosts(w)
	aopts := env.AdvisorOptions(name)
	k := halfSqrt(n)
	batches := 5

	t := &Table{
		Title:   "Extra: incremental vs one-shot compression (TPC-DS)",
		Columns: []string{"batch", "seen", "incremental improvement %", "one-shot improvement %"},
	}
	ic := core.NewIncremental(g.Cat, core.DefaultOptions(), k)
	per := n / batches
	oneShot := core.New(core.DefaultOptions())
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = n
		}
		ic.Observe(w.Queries[lo:hi])
		seen := w.Subset(rangeInts(0, hi))
		incTuned := advisorTune(o, ic.Pool(), aopts)
		incPct, _, _ := evaluate(o, seen, incTuned)
		osRes := oneShot.Compress(seen, k)
		osTuned := advisorTune(o, seen.WeightedSubset(osRes.Indices, osRes.Weights), aopts)
		osPct, _, _ := evaluate(o, seen, osTuned)
		t.AddRow(b+1, hi, incPct, osPct)
	}
	return []*Table{t}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
