// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8) over the repository's substrates: the benchmark
// generators, the what-if optimizer, the DTA/DEXTER-style advisors, ISUM
// and the baseline compressors. See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"math"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/compress"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// Scale is the benchmark scale factor (the paper uses 10). It affects
	// only catalog statistics, not runtime.
	Scale float64
	// Seed drives workload parameter generation.
	Seed int64
	// Fast shrinks workload sizes (used by tests and quick runs); the full
	// sizes are the paper's Table 2 values.
	Fast bool
	// Parallelism bounds worker goroutines in the compression and tuning
	// hot paths (0 = GOMAXPROCS, 1 = serial). Experiment outputs are
	// identical at any setting; this only trades wall-clock for cores.
	Parallelism int
	// Telemetry, when non-nil, collects pipeline metrics and phase spans
	// across every experiment: optimizers are constructed against it and
	// Run appends a per-figure phase breakdown (elapsed time plus counter
	// deltas — what-if calls, cache hits/misses, greedy rounds) next to
	// each figure's tables. Figure results themselves are identical with
	// or without it.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config { return Config{Scale: 10, Seed: 1} }

// FastConfig returns a configuration sized for minutes, not hours.
func FastConfig() Config { return Config{Scale: 10, Seed: 1, Fast: true} }

// WorkloadSize returns the number of query instances for a benchmark under
// this config (Table 2 sizes, shrunk 10–20× in Fast mode).
func (c Config) WorkloadSize(name string) int {
	full := map[string]int{"TPC-H": 2200, "TPC-DS": 9100, "DSB": 520, "Real-M": 473}
	fast := map[string]int{"TPC-H": 110, "TPC-DS": 182, "DSB": 104, "Real-M": 95}
	if c.Fast {
		return fast[name]
	}
	return full[name]
}

// Env lazily builds and caches benchmark workloads with filled costs.
type Env struct {
	Cfg Config

	gens    map[string]*benchmarks.Generator
	wls     map[string]*workload.Workload
	opts    map[string]*cost.Optimizer
	studies map[string]*perQueryStudy
}

// NewEnv returns an empty environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:     cfg,
		gens:    map[string]*benchmarks.Generator{},
		wls:     map[string]*workload.Workload{},
		opts:    map[string]*cost.Optimizer{},
		studies: map[string]*perQueryStudy{},
	}
}

// Generator returns (building on first use) the named benchmark generator.
func (e *Env) Generator(name string) *benchmarks.Generator {
	if g, ok := e.gens[name]; ok {
		return g
	}
	var g *benchmarks.Generator
	switch name {
	case "TPC-H":
		g = benchmarks.TPCH(e.Cfg.Scale)
	case "TPC-DS":
		g = benchmarks.TPCDS(e.Cfg.Scale)
	case "DSB":
		g = benchmarks.DSB(e.Cfg.Scale)
	case "Real-M":
		g = benchmarks.RealM(e.Cfg.Seed + 40)
	default:
		panic("experiments: unknown benchmark " + name)
	}
	e.gens[name] = g
	return g
}

// Workload returns (building on first use) the named benchmark workload at
// the configured size, with optimizer-estimated costs filled — the paper's
// input-workload contract.
func (e *Env) Workload(name string) (*workload.Workload, *cost.Optimizer) {
	if w, ok := e.wls[name]; ok {
		return w, e.opts[name]
	}
	g := e.Generator(name)
	w, err := g.Workload(e.Cfg.WorkloadSize(name), e.Cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: building %s workload: %v", name, err))
	}
	o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), e.Cfg.Telemetry)
	o.FillCosts(w)
	e.wls[name] = w
	e.opts[name] = o
	return w, o
}

// AdvisorOptions returns the default DTA-style tuning constraints used
// across experiments unless a figure varies them: up to 30 indexes (the
// paper observes negligible improvement past 30) within 3× database
// storage (DTA's default budget).
func (e *Env) AdvisorOptions(name string) advisor.Options {
	opts := advisor.DefaultOptions()
	opts.MaxIndexes = 30
	opts.StorageBudget = 3 * e.Generator(name).Cat.TotalSizeBytes()
	opts.Parallelism = e.Cfg.Parallelism
	opts.Telemetry = e.Cfg.Telemetry
	return opts
}

// advisorTune tunes a (compressed) workload and returns the configuration.
func advisorTune(o *cost.Optimizer, w *workload.Workload, aopts advisor.Options) *index.Configuration {
	return advisor.New(o, aopts).Tune(w).Config
}

// evaluate returns the improvement % (and before/after costs) of cfg on w.
func evaluate(o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration) (pct, base, final float64) {
	return advisor.EvaluateImprovement(o, w, cfg)
}

// RunPipeline compresses w to k queries with comp, tunes the compressed
// workload, and returns the improvement % on the full workload — the
// paper's evaluation metric.
func RunPipeline(o *cost.Optimizer, w *workload.Workload, comp compress.Compressor, k int, aopts advisor.Options) float64 {
	res := comp.Compress(w, k)
	cw := w.WeightedSubset(res.Indices, res.Weights)
	tuned := advisor.New(o, aopts).Tune(cw)
	pct, _, _ := advisor.EvaluateImprovement(o, w, tuned.Config)
	return pct
}

// StandardCompressors returns the Fig. 9 comparison set: the four baselines
// plus ISUM and ISUM-S.
func StandardCompressors(seed int64) []compress.Compressor {
	return []compress.Compressor{
		&compress.Uniform{Seed: seed},
		&compress.CostTopK{},
		&compress.Stratified{Seed: seed},
		&compress.GSUM{},
		core.New(core.DefaultOptions()),
		core.New(core.ISUMSOptions()),
	}
}

// KSweep returns the compressed-size sweep {2, 4, ..., ≤ 2√n} the paper
// uses in Fig. 9a, capped at maxPoints entries (from the top) in Fast mode.
func (c Config) KSweep(n int) []int {
	limit := int(2 * math.Sqrt(float64(n)))
	var ks []int
	for k := 2; k <= limit; k *= 2 {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		ks = []int{2}
	}
	if c.Fast && len(ks) > 4 {
		ks = ks[len(ks)-4:]
	}
	return ks
}

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Median returns the median of a series (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64{}, xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
