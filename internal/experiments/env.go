// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8) over the repository's substrates: the benchmark
// generators, the what-if optimizer, the DTA/DEXTER-style advisors, ISUM
// and the baseline compressors. See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
package experiments

import (
	"context"
	"fmt"
	"math"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/compress"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// Scale is the benchmark scale factor (the paper uses 10). It affects
	// only catalog statistics, not runtime.
	Scale float64
	// Seed drives workload parameter generation.
	Seed int64
	// Fast shrinks workload sizes (used by tests and quick runs); the full
	// sizes are the paper's Table 2 values.
	Fast bool
	// Parallelism bounds worker goroutines in the compression and tuning
	// hot paths (0 = GOMAXPROCS, 1 = serial). Experiment outputs are
	// identical at any setting; this only trades wall-clock for cores.
	Parallelism int
	// Shards, when > 1, routes the advisors' workload costing through the
	// template-hash sharded reduction (advisor.Options.Shards). Off by
	// default: the sharded fold is deterministic but associates the
	// floating-point sum differently, and recorded experiment results pin
	// the single-partition reduction.
	Shards int
	// Telemetry, when non-nil, collects pipeline metrics and phase spans
	// across every experiment: optimizers are constructed against it and
	// Run appends a per-figure phase breakdown (elapsed time plus counter
	// deltas — what-if calls, cache hits/misses, greedy rounds) next to
	// each figure's tables. Figure results themselves are identical with
	// or without it.
	Telemetry *telemetry.Registry
	// Ctx, when non-nil, bounds the whole run (DESIGN.md §9): runners
	// observe cancellation inside compression, tuning, and evaluation and
	// abort with the context's error, so a -timeout run stops promptly
	// instead of finishing the figure sweep.
	Ctx context.Context //lint:allow ctx optional run-scoped config knob; Context() threads it into every runner call
	// Retry overrides the optimizers' what-if retry policy when
	// MaxAttempts > 0 (zero value keeps cost.DefaultRetryPolicy).
	Retry cost.RetryPolicy
	// Injector, when non-nil, installs deterministic fault injection on
	// every optimizer the experiments construct (the -chaos path).
	Injector cost.Injector
	// NoElide disables what-if call elision (DESIGN.md §16) on the
	// optimizers and advisors the experiments construct. The zero value
	// keeps elision on — figure results are identical either way; elision
	// only shrinks the what-if call counts in the phase breakdowns.
	NoElide bool
}

// Context returns the run's context (Background when none was set).
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config { return Config{Scale: 10, Seed: 1} }

// FastConfig returns a configuration sized for minutes, not hours.
func FastConfig() Config { return Config{Scale: 10, Seed: 1, Fast: true} }

// WorkloadSize returns the number of query instances for a benchmark under
// this config (Table 2 sizes, shrunk 10–20× in Fast mode).
func (c Config) WorkloadSize(name string) int {
	full := map[string]int{"TPC-H": 2200, "TPC-DS": 9100, "DSB": 520, "Real-M": 473}
	fast := map[string]int{"TPC-H": 110, "TPC-DS": 182, "DSB": 104, "Real-M": 95}
	if c.Fast {
		return fast[name]
	}
	return full[name]
}

// Env lazily builds and caches benchmark workloads with filled costs.
type Env struct {
	Cfg Config

	gens    map[string]*benchmarks.Generator
	wls     map[string]*workload.Workload
	opts    map[string]*cost.Optimizer
	studies map[string]*perQueryStudy
}

// NewEnv returns an empty environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:     cfg,
		gens:    map[string]*benchmarks.Generator{},
		wls:     map[string]*workload.Workload{},
		opts:    map[string]*cost.Optimizer{},
		studies: map[string]*perQueryStudy{},
	}
}

// freshOptimizer returns a new optimizer over a generator's catalog,
// registered against the environment's telemetry (if any) so per-figure
// breakdowns attribute its what-if calls, and configured with the run's
// retry policy and fault injector.
func (e *Env) freshOptimizer(g *benchmarks.Generator) *cost.Optimizer {
	o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), e.Cfg.Telemetry)
	o.SetElision(!e.Cfg.NoElide)
	if e.Cfg.Retry.MaxAttempts > 0 {
		o.SetRetryPolicy(e.Cfg.Retry)
	}
	if e.Cfg.Injector != nil {
		o.SetInjector(e.Cfg.Injector)
	}
	return o
}

// Generator returns (building on first use) the named benchmark generator.
func (e *Env) Generator(name string) (*benchmarks.Generator, error) {
	if g, ok := e.gens[name]; ok {
		return g, nil
	}
	var g *benchmarks.Generator
	switch name {
	case "TPC-H":
		g = benchmarks.TPCH(e.Cfg.Scale)
	case "TPC-DS":
		g = benchmarks.TPCDS(e.Cfg.Scale)
	case "DSB":
		g = benchmarks.DSB(e.Cfg.Scale)
	case "Real-M":
		g = benchmarks.RealM(e.Cfg.Seed + 40)
	default:
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	e.gens[name] = g
	return g, nil
}

// Workload returns (building on first use) the named benchmark workload at
// the configured size, with optimizer-estimated costs filled — the paper's
// input-workload contract.
func (e *Env) Workload(name string) (*workload.Workload, *cost.Optimizer, error) {
	if w, ok := e.wls[name]; ok {
		return w, e.opts[name], nil
	}
	g, err := e.Generator(name)
	if err != nil {
		return nil, nil, err
	}
	w, err := g.Workload(e.Cfg.WorkloadSize(name), e.Cfg.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building %s workload: %w", name, err)
	}
	o := e.freshOptimizer(g)
	if err := o.FillCostsCtx(e.Cfg.Context(), w, e.Cfg.Parallelism); err != nil {
		return nil, nil, fmt.Errorf("experiments: costing %s workload: %w", name, err)
	}
	e.wls[name] = w
	e.opts[name] = o
	return w, o, nil
}

// AdvisorOptions returns the default DTA-style tuning constraints used
// across experiments unless a figure varies them: up to 30 indexes (the
// paper observes negligible improvement past 30) within 3× database
// storage (DTA's default budget).
func (e *Env) AdvisorOptions(name string) (advisor.Options, error) {
	opts := advisor.DefaultOptions()
	g, err := e.Generator(name)
	if err != nil {
		return opts, err
	}
	opts.MaxIndexes = 30
	opts.StorageBudget = 3 * g.Cat.TotalSizeBytes()
	opts.Parallelism = e.Cfg.Parallelism
	opts.Shards = e.Cfg.Shards
	opts.Telemetry = e.Cfg.Telemetry
	opts.Elide = !e.Cfg.NoElide
	return opts, nil
}

// advisorTune tunes a (compressed) workload and returns the configuration.
// A run cut short by ctx aborts with the context's error — experiments
// want full figures or a clean stop, not silently partial data points.
func advisorTune(ctx context.Context, o *cost.Optimizer, w *workload.Workload, aopts advisor.Options) (*index.Configuration, error) {
	res, err := advisor.New(o, aopts).TuneContext(ctx, w)
	if err != nil {
		return nil, err
	}
	if res.Partial {
		return nil, ctxError(ctx)
	}
	return res.Config, nil
}

// ctxError returns ctx's error, defaulting to DeadlineExceeded when the
// context has not (yet) recorded one — used when a Partial result proves
// the run was cut short.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// evaluate returns the improvement % (and before/after costs) of cfg on w.
func evaluate(ctx context.Context, o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration) (pct, base, final float64, err error) {
	return advisor.EvaluateImprovementContext(ctx, o, w, cfg, 0)
}

// ctxCompressor is implemented by compressors that support cancellation
// (core.Compressor); baselines without it run to completion — they are
// fast enough that the next ctx check bounds the latency.
type ctxCompressor interface {
	CompressContext(ctx context.Context, w *workload.Workload, k int) (*core.Result, error)
}

// RunPipeline compresses w to k queries with comp, tunes the compressed
// workload, and returns the improvement % on the full workload — the
// paper's evaluation metric. Cancellation of ctx aborts with its error.
func RunPipeline(ctx context.Context, o *cost.Optimizer, w *workload.Workload, comp compress.Compressor, k int, aopts advisor.Options) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var res *core.Result
	if cc, ok := comp.(ctxCompressor); ok {
		r, err := cc.CompressContext(ctx, w, k)
		if err != nil {
			return 0, err
		}
		if r.Partial {
			return 0, ctxError(ctx)
		}
		res = r
	} else {
		res = comp.Compress(w, k)
	}
	cw := w.WeightedSubset(res.Indices, res.Weights)
	cfg, err := advisorTune(ctx, o, cw, aopts)
	if err != nil {
		return 0, err
	}
	pct, _, _, err := advisor.EvaluateImprovementContext(ctx, o, w, cfg, 0)
	return pct, err
}

// StandardCompressors returns the Fig. 9 comparison set: the four baselines
// plus ISUM and ISUM-S.
func StandardCompressors(seed int64) []compress.Compressor {
	return []compress.Compressor{
		&compress.Uniform{Seed: seed},
		&compress.CostTopK{},
		&compress.Stratified{Seed: seed},
		&compress.GSUM{},
		core.New(core.DefaultOptions()),
		core.New(core.ISUMSOptions()),
	}
}

// KSweep returns the compressed-size sweep {2, 4, ..., ≤ 2√n} the paper
// uses in Fig. 9a, capped at maxPoints entries (from the top) in Fast mode.
func (c Config) KSweep(n int) []int {
	limit := int(2 * math.Sqrt(float64(n)))
	var ks []int
	for k := 2; k <= limit; k *= 2 {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		ks = []int{2}
	}
	if c.Fast && len(ks) > 4 {
		ks = ks[len(ks)-4:]
	}
	return ks
}

// Pearson returns the Pearson correlation coefficient of two series.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Median returns the median of a series (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64{}, xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
