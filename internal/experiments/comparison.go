package experiments

import (
	"fmt"
	"math"

	"isum/internal/advisor"
	"isum/internal/compress"
	"isum/internal/core"
)

// compareAt runs all compressors at one k and returns name → improvement %.
func compareAt(env *Env, name string, comps []compress.Compressor, k int, aopts advisor.Options) (map[string]float64, error) {
	w, o, err := env.Workload(name)
	if err != nil {
		return nil, err
	}
	ctx := env.Cfg.Context()
	out := map[string]float64{}
	for _, c := range comps {
		pct, err := RunPipeline(ctx, o, w, c, k, aopts)
		if err != nil {
			return nil, err
		}
		out[c.Name()] = pct
	}
	return out, nil
}

// Fig9a reproduces Figure 9a: improvement % vs compressed workload size for
// the six algorithms on all four workloads.
func Fig9a(env *Env) ([]*Table, error) {
	var tables []*Table
	for _, name := range []string{"TPC-H", "TPC-DS", "DSB", "Real-M"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		comps := StandardCompressors(env.Cfg.Seed)
		t := &Table{
			Title:   fmt.Sprintf("Fig 9a (%s): improvement %% vs compressed size", name),
			Columns: append([]string{"k"}, compNames(comps)...),
		}
		aopts, err := env.AdvisorOptions(name)
		if err != nil {
			return nil, err
		}
		for _, k := range env.Cfg.KSweep(w.Len()) {
			res, err := compareAt(env, name, comps, k, aopts)
			if err != nil {
				return nil, err
			}
			row := []any{k}
			for _, c := range comps {
				row = append(row, res[c.Name()])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9b reproduces Figure 9b: improvement % vs index-configuration size at
// a fixed compressed size of 0.5√n.
func Fig9b(env *Env) ([]*Table, error) {
	var tables []*Table
	configSizes := []int{8, 16, 32, 64}
	if env.Cfg.Fast {
		configSizes = []int{8, 16, 32}
	}
	for _, name := range []string{"TPC-H", "TPC-DS", "DSB", "Real-M"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		k := halfSqrt(w.Len())
		comps := StandardCompressors(env.Cfg.Seed)
		t := &Table{
			Title:   fmt.Sprintf("Fig 9b (%s): improvement %% vs configuration size (k=%d)", name, k),
			Columns: append([]string{"config size"}, compNames(comps)...),
		}
		for _, m := range configSizes {
			aopts, err := env.AdvisorOptions(name)
			if err != nil {
				return nil, err
			}
			aopts.MaxIndexes = m
			res, err := compareAt(env, name, comps, k, aopts)
			if err != nil {
				return nil, err
			}
			row := []any{m}
			for _, c := range comps {
				row = append(row, res[c.Name()])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10 reproduces Figure 10: improvement % vs storage budget (1.5×–3× the
// database size), including the ISUM-NoTable ablation.
func Fig10(env *Env) ([]*Table, error) {
	var tables []*Table
	budgets := []float64{1.5, 2, 2.5, 3}
	for _, name := range []string{"TPC-H", "TPC-DS", "DSB", "Real-M"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		k := halfSqrt(w.Len())
		comps := []compress.Compressor{
			&compress.Uniform{Seed: env.Cfg.Seed},
			&compress.CostTopK{},
			&compress.Stratified{Seed: env.Cfg.Seed},
			&compress.GSUM{},
			core.New(core.DefaultOptions()),
			core.New(core.NoTableOptions()),
		}
		t := &Table{
			Title:   fmt.Sprintf("Fig 10 (%s): improvement %% vs storage budget (k=%d)", name, k),
			Columns: append([]string{"budget"}, compNames(comps)...),
		}
		g, err := env.Generator(name)
		if err != nil {
			return nil, err
		}
		dbSize := g.Cat.TotalSizeBytes()
		for _, b := range budgets {
			aopts, err := env.AdvisorOptions(name)
			if err != nil {
				return nil, err
			}
			aopts.StorageBudget = int64(b * float64(dbSize))
			res, err := compareAt(env, name, comps, k, aopts)
			if err != nil {
				return nil, err
			}
			row := []any{fmt.Sprintf("%.1fx", b)}
			for _, c := range comps {
				row = append(row, res[c.Name()])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig15 reproduces Figure 15: the algorithm comparison under the
// DEXTER-style advisor on TPC-H and TPC-DS.
func Fig15(env *Env) ([]*Table, error) {
	var tables []*Table
	for _, name := range []string{"TPC-H", "TPC-DS"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		comps := StandardCompressors(env.Cfg.Seed)
		t := &Table{
			Title:   fmt.Sprintf("Fig 15 (%s): improvement %% with DEXTER-style advisor", name),
			Columns: append([]string{"k"}, compNames(comps)...),
		}
		for _, k := range env.Cfg.KSweep(w.Len()) {
			res, err := compareAt(env, name, comps, k, advisor.DexterOptions())
			if err != nil {
				return nil, err
			}
			row := []any{k}
			for _, c := range comps {
				row = append(row, res[c.Name()])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func compNames(comps []compress.Compressor) []string {
	out := make([]string, len(comps))
	for i, c := range comps {
		out[i] = c.Name()
	}
	return out
}

func halfSqrt(n int) int {
	k := int(0.5 * math.Sqrt(float64(n)))
	if k < 2 {
		k = 2
	}
	return k
}
