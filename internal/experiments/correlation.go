package experiments

import (
	"fmt"

	"isum/internal/advisor"
	"isum/internal/core"
	"isum/internal/features"
	"isum/internal/workload"
)

// perQueryStudy holds everything the correlation experiments (Figs. 5–8,
// Table 3) need about one workload: per-query single-query tuning outcomes
// and feature states under both weighting modes.
type perQueryStudy struct {
	w *workload.Workload
	// reduction[i] is C(q_i) − C_I(q_i) when q_i is tuned alone.
	reduction []float64
	// wlImprovement[i] is the improvement % on the whole workload from the
	// indexes of tuning q_i alone.
	wlImprovement []float64
	ruleStates    []*core.QueryState
	statsStates   []*core.QueryState
}

// buildPerQueryStudy tunes every query of the named workload independently
// under the given advisor options. Studies are cached per (workload, mode)
// inside the Env, since Figs. 5–8 and Table 3 share them.
func buildPerQueryStudy(env *Env, name string, aopts advisor.Options) (*perQueryStudy, error) {
	key := fmt.Sprintf("%s/mode=%d/m=%d", name, aopts.Mode, aopts.MaxIndexes)
	if s, ok := env.studies[key]; ok {
		return s, nil
	}
	s, err := computePerQueryStudy(env, name, aopts)
	if err != nil {
		return nil, err
	}
	env.studies[key] = s
	return s, nil
}

func computePerQueryStudy(env *Env, name string, aopts advisor.Options) (*perQueryStudy, error) {
	ctx := env.Cfg.Context()
	w, o, err := env.Workload(name)
	if err != nil {
		return nil, err
	}
	ruleStates, err := core.BuildStatesContext(ctx, w, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	statsStates, err := core.BuildStatesContext(ctx, w, core.ISUMSOptions())
	if err != nil {
		return nil, err
	}
	s := &perQueryStudy{
		w:             w,
		reduction:     make([]float64, w.Len()),
		wlImprovement: make([]float64, w.Len()),
		ruleStates:    ruleStates,
		statsStates:   statsStates,
	}
	adv := advisor.New(o, aopts)
	for i := range w.Queries {
		single := w.Subset([]int{i})
		res, err := adv.TuneContext(ctx, single)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctxError(ctx)
		}
		s.reduction[i] = res.InitialCost - res.FinalCost
		pct, _, _, err := evaluate(ctx, o, w, res.Config)
		if err != nil {
			return nil, err
		}
		s.wlImprovement[i] = pct
	}
	return s, nil
}

// utilities extracts the raw per-query utility series.
func utilities(states []*core.QueryState) []float64 {
	out := make([]float64, len(states))
	for i, st := range states {
		out[i] = st.Utility
	}
	return out
}

// similarityWithWorkload returns Σ_j S(q_i, q_j) per query.
func similarityWithWorkload(states []*core.QueryState) []float64 {
	out := make([]float64, len(states))
	for i, a := range states {
		for j, b := range states {
			if i == j {
				continue
			}
			out[i] += a.Similarity(b)
		}
	}
	return out
}

// benefits returns B(q_i) = U + Σ F (Definition 4) per query.
func benefits(states []*core.QueryState) []float64 {
	out := make([]float64, len(states))
	for i, st := range states {
		out[i] = core.BenefitAllPairs(st, states)
	}
	return out
}

// benefitsWithSimilarity computes benefit using an arbitrary pairwise
// similarity function (for the Fig. 7 similarity-measure comparison).
func benefitsWithSimilarity(states []*core.QueryState, sim func(i, j int) float64) []float64 {
	out := make([]float64, len(states))
	for i, st := range states {
		b := st.Utility
		for j, other := range states {
			if i == j {
				continue
			}
			b += sim(i, j) * other.Utility
		}
		out[i] = b
	}
	return out
}

// tpchStudy builds the default TPC-H per-query study shared by Figs. 5–8.
func tpchStudy(env *Env) (*perQueryStudy, error) {
	aopts, err := env.AdvisorOptions("TPC-H")
	if err != nil {
		return nil, err
	}
	return buildPerQueryStudy(env, "TPC-H", aopts)
}

// Fig5 reproduces Figure 5: correlation between utility proxies and the
// per-query cost reduction when each query is tuned independently (TPC-H).
func Fig5(env *Env) ([]*Table, error) {
	s, err := tpchStudy(env)
	if err != nil {
		return nil, err
	}
	costs := make([]float64, s.w.Len())
	costSel := make([]float64, s.w.Len())
	for i, q := range s.w.Queries {
		costs[i] = q.Cost
		costSel[i] = (1 - q.Info.AvgFilterJoinSelectivity()) * q.Cost
	}
	t := &Table{
		Title:   "Fig 5: utility vs per-query cost reduction (TPC-H)",
		Columns: []string{"utility proxy", "pearson r"},
	}
	t.AddRow("original cost", Pearson(costs, s.reduction))
	t.AddRow("cost + selectivity", Pearson(costSel, s.reduction))
	return []*Table{t}, nil
}

// Fig6 reproduces Figure 6: correlation of utility, similarity, and benefit
// with the workload improvement from tuning each query alone (TPC-H).
func Fig6(env *Env) ([]*Table, error) {
	s, err := tpchStudy(env)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 6: estimator vs workload improvement (TPC-H)",
		Columns: []string{"estimator", "pearson r"},
	}
	t.AddRow("utility", Pearson(utilities(s.ruleStates), s.wlImprovement))
	t.AddRow("similarity", Pearson(similarityWithWorkload(s.ruleStates), s.wlImprovement))
	t.AddRow("benefit", Pearson(benefits(s.ruleStates), s.wlImprovement))
	return []*Table{t}, nil
}

// Fig7 reproduces Figure 7: the impact of the similarity measure used
// inside benefit on its correlation with workload improvement (TPC-H).
func Fig7(env *Env) ([]*Table, error) {
	s, err := tpchStudy(env)
	if err != nil {
		return nil, err
	}
	n := s.w.Len()

	candSets := make([]map[string]bool, n)
	for i, q := range s.w.Queries {
		candSets[i] = features.CandidateIndexIDs(q.Info)
	}
	candSim := func(i, j int) float64 { return features.SetJaccard(candSets[i], candSets[j]) }
	jacSim := func(i, j int) float64 {
		return s.ruleStates[i].OrigVec.Jaccard(s.ruleStates[j].OrigVec)
	}
	ruleSim := func(i, j int) float64 {
		return s.ruleStates[i].OrigVec.WeightedJaccard(s.ruleStates[j].OrigVec)
	}
	statsSim := func(i, j int) float64 {
		return s.statsStates[i].OrigVec.WeightedJaccard(s.statsStates[j].OrigVec)
	}

	t := &Table{
		Title:   "Fig 7: similarity measure inside benefit vs workload improvement (TPC-H)",
		Columns: []string{"similarity measure", "pearson r"},
	}
	t.AddRow("candidate indexes", Pearson(benefitsWithSimilarity(s.ruleStates, candSim), s.wlImprovement))
	t.AddRow("jaccard (unweighted)", Pearson(benefitsWithSimilarity(s.ruleStates, jacSim), s.wlImprovement))
	t.AddRow("weighted jaccard (rule)", Pearson(benefitsWithSimilarity(s.ruleStates, ruleSim), s.wlImprovement))
	t.AddRow("weighted jaccard (stats)", Pearson(benefitsWithSimilarity(s.statsStates, statsSim), s.wlImprovement))
	return []*Table{t}, nil
}

// Fig8 reproduces Figure 8: (a) the F(V)/F(W) summary-feature estimation
// error on TPC-H and TPC-DS, and (b) the correlation of the
// summary-feature benefit with workload improvement on TPC-H.
func Fig8(env *Env) ([]*Table, error) {
	errT := &Table{
		Title:   "Fig 8a: summary-feature influence estimation error F(V)/F(W)",
		Columns: []string{"workload", "within 2x", "within 10x", "median ratio"},
	}
	for _, name := range []string{"TPC-H", "TPC-DS"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		states, err := core.BuildStatesContext(env.Cfg.Context(), w, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ss := core.BuildSummary(states)
		var ratios []float64
		within2, within10 := 0, 0
		for _, st := range states {
			fw := core.InfluenceOnWorkload(st, states)
			if fw <= 0 {
				continue
			}
			r := core.InfluenceOnSummary(st, ss) / fw
			ratios = append(ratios, r)
			if r >= 0.5 && r <= 2 {
				within2++
			}
			if r >= 0.1 && r <= 10 {
				within10++
			}
		}
		n := len(ratios)
		if n == 0 {
			n = 1
		}
		errT.AddRow(name,
			fmt.Sprintf("%.0f%%", 100*float64(within2)/float64(n)),
			fmt.Sprintf("%.0f%%", 100*float64(within10)/float64(n)),
			Median(ratios))
	}

	s, err := tpchStudy(env)
	if err != nil {
		return nil, err
	}
	ss := core.BuildSummary(s.ruleStates)
	sumBenefit := make([]float64, len(s.ruleStates))
	for i, st := range s.ruleStates {
		sumBenefit[i] = core.BenefitSummary(st, ss)
	}
	corrT := &Table{
		Title:   "Fig 8b: benefit via summary features vs workload improvement (TPC-H)",
		Columns: []string{"estimator", "pearson r"},
	}
	corrT.AddRow("benefit (summary features)", Pearson(sumBenefit, s.wlImprovement))
	corrT.AddRow("benefit (all-pairs)", Pearson(benefits(s.ruleStates), s.wlImprovement))
	return []*Table{errT, corrT}, nil
}

// Table3 reproduces Table 3: correlation of the six estimation techniques
// with the improvement reported by the DTA-style and DEXTER-style advisors
// on TPC-H and TPC-DS.
func Table3(env *Env) ([]*Table, error) {
	t := &Table{
		Title: "Table 3: estimator correlation with actual improvement",
		Columns: []string{"estimation technique",
			"TPC-H DTA", "TPC-H DEXTER", "TPC-DS DTA", "TPC-DS DEXTER"},
	}
	type cell struct{ study *perQueryStudy }
	var cells []cell
	for _, name := range []string{"TPC-H", "TPC-DS"} {
		dtaOpts, err := env.AdvisorOptions(name)
		if err != nil {
			return nil, err
		}
		dexOpts := advisor.DexterOptions()
		dtaStudy, err := buildPerQueryStudy(env, name, dtaOpts)
		if err != nil {
			return nil, err
		}
		dexStudy, err := buildPerQueryStudy(env, name, dexOpts)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell{dtaStudy}, cell{dexStudy})
	}
	rows := []struct {
		name string
		xs   func(s *perQueryStudy) []float64
	}{
		{"Utility (only cost)", func(s *perQueryStudy) []float64 {
			out := make([]float64, s.w.Len())
			for i, q := range s.w.Queries {
				out[i] = q.Cost
			}
			return out
		}},
		{"Utility (cost + selectivity)", func(s *perQueryStudy) []float64 {
			return utilities(s.statsStates)
		}},
		{"Similarity (rule-based)", func(s *perQueryStudy) []float64 {
			return similarityWithWorkload(s.ruleStates)
		}},
		{"Similarity (stats-based)", func(s *perQueryStudy) []float64 {
			return similarityWithWorkload(s.statsStates)
		}},
		{"Benefit (rule-based)", func(s *perQueryStudy) []float64 {
			return benefits(s.ruleStates)
		}},
		{"Benefit (stats-based)", func(s *perQueryStudy) []float64 {
			return benefits(s.statsStates)
		}},
	}
	for _, r := range rows {
		vals := make([]any, 0, 5)
		vals = append(vals, r.name)
		for _, c := range cells {
			vals = append(vals, Pearson(r.xs(c.study), c.study.wlImprovement))
		}
		t.AddRow(vals...)
	}
	return []*Table{t}, nil
}
