package experiments

import (
	"fmt"

	"isum/internal/core"
)

// Fig13 reproduces Figure 13: the impact of the update strategies of
// Section 4.3 on improvement, using the all-pairs greedy on TPC-H and
// TPC-DS.
func Fig13(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	strategies := []struct {
		name string
		s    core.UpdateStrategy
	}{
		{"No Update", core.UpdateNone},
		{"Utility Update", core.UpdateUtilityOnly},
		{"Utility + Weight Subtract", core.UpdateWeightSubtract},
		{"Utility + Feature Remove", core.UpdateFeatureRemove},
	}
	ks := []int{1, 2, 4, 8}
	// The all-pairs greedy is O(k·n²); cap the study size the way the paper
	// itself caps its all-pairs experiments (Fig. 11 stops near 2000
	// queries). The strategy comparison, not scale, is the point here.
	const maxAllPairsN = 1100
	var tables []*Table
	for _, name := range []string{"TPC-H", "TPC-DS"} {
		w, o, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		if w.Len() > maxAllPairsN {
			ids := make([]int, maxAllPairsN)
			for i := range ids {
				ids[i] = i * w.Len() / maxAllPairsN // stratified slice
			}
			w = w.Subset(ids)
		}
		aopts, err := env.AdvisorOptions(name)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:   fmt.Sprintf("Fig 13 (%s): improvement %% by update strategy (all-pairs greedy)", name),
			Columns: []string{"k", strategies[0].name, strategies[1].name, strategies[2].name, strategies[3].name},
		}
		for _, k := range ks {
			row := []any{k}
			for _, st := range strategies {
				opts := core.DefaultOptions()
				opts.Algorithm = core.AllPairs
				opts.Update = st.s
				pct, err := RunPipeline(ctx, o, w, core.New(opts), k, aopts)
				if err != nil {
					return nil, err
				}
				row = append(row, pct)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig14 reproduces Figure 14: the impact of the weighing strategies of
// Section 7 on improvement (TPC-H).
func Fig14(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	strategies := []struct {
		name string
		s    core.WeighStrategy
	}{
		{"No Weighing", core.WeighNone},
		{"Benefit (Selection)", core.WeighSelectionBenefit},
		{"Recalib. Benefit", core.WeighRecalibrated},
		{"Recalib. w/ Template Weighing", core.WeighTemplateRecalibrated},
	}
	w, o, err := env.Workload("TPC-H")
	if err != nil {
		return nil, err
	}
	aopts, err := env.AdvisorOptions("TPC-H")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig 14 (TPC-H): improvement % by weighing strategy",
		Columns: []string{"k", strategies[0].name, strategies[1].name, strategies[2].name, strategies[3].name},
	}
	for _, k := range env.Cfg.KSweep(w.Len()) {
		row := []any{k}
		for _, st := range strategies {
			opts := core.DefaultOptions()
			opts.Weighing = st.s
			pct, err := RunPipeline(ctx, o, w, core.New(opts), k, aopts)
			if err != nil {
				return nil, err
			}
			row = append(row, pct)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
