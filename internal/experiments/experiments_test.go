package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func fastEnv() *Env { return NewEnv(FastConfig()) }

// runExp invokes a runner and fails the test on error.
func runExp(t *testing.T, f Runner, env *Env) []*Table {
	t.Helper()
	tabs, err := f(env)
	if err != nil {
		t.Fatalf("runner failed: %v", err)
	}
	return tabs
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %f", got)
	}
	inv := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, inv); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %f", got)
	}
	if Pearson(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Fatal("constant series should give 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestKSweep(t *testing.T) {
	cfg := Config{}
	ks := cfg.KSweep(2200)
	if ks[0] != 2 {
		t.Fatalf("sweep start = %d", ks[0])
	}
	limit := int(2 * math.Sqrt(2200))
	for _, k := range ks {
		if k > limit {
			t.Fatalf("k %d exceeds 2*sqrt(n) = %d", k, limit)
		}
	}
	fast := Config{Fast: true}
	if got := fast.KSweep(2200); len(got) > 4 {
		t.Fatalf("fast sweep too long: %v", got)
	}
	if got := cfg.KSweep(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("degenerate sweep: %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 3.14159)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "3.142") {
		t.Fatalf("render = %q", out)
	}
	var csvBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "a,b\n") {
		t.Fatalf("csv = %q", csvBuf.String())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9a",
		"fig9b", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"table2", "table3", "extra-norm", "extra-advisor", "extra-incremental"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Fatalf("missing experiment %q", id)
		}
	}
	var buf bytes.Buffer
	if err := Run(fastEnv(), "nope", &buf); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable2Shape(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Table2, env)
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("table2 = %+v", tabs)
	}
}

func TestFig5CorrelationsPositive(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig5, env)
	for _, row := range tabs[0].Rows {
		r := parseF(t, row[1])
		if r < 0.5 {
			t.Fatalf("utility correlation too weak: %v", row)
		}
	}
}

func TestFig6BenefitBeatsComponents(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig6, env)
	rows := tabs[0].Rows
	utility, similarity, benefit := parseF(t, rows[0][1]), parseF(t, rows[1][1]), parseF(t, rows[2][1])
	// The paper's core claim (Fig. 6): benefit correlates better than either
	// component alone.
	if benefit <= utility || benefit <= similarity {
		t.Fatalf("benefit (%f) should beat utility (%f) and similarity (%f)",
			benefit, utility, similarity)
	}
}

func TestFig8SummaryEstimationTight(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig8, env)
	for _, row := range tabs[0].Rows {
		within10 := strings.TrimSuffix(row[2], "%")
		if v := parseF(t, within10); v < 70 {
			t.Fatalf("summary estimate too loose: %v", row)
		}
	}
	if len(tabs) != 2 || len(tabs[1].Rows) != 2 {
		t.Fatalf("fig8b missing: %+v", tabs)
	}
}

func TestFig13UpdatesHelp(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig13, env)
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1] // largest k
		noUpdate := parseF(t, last[1])
		featureRemove := parseF(t, last[4])
		if featureRemove < noUpdate {
			t.Fatalf("%s: feature-remove (%f) should beat no-update (%f)",
				tab.Title, featureRemove, noUpdate)
		}
	}
}

func TestFig2CountersGrow(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig2, env)
	rows := tabs[0].Rows
	firstCalls, lastCalls := parseF(t, rows[0][3]), parseF(t, rows[len(rows)-1][3])
	if lastCalls <= firstCalls {
		t.Fatalf("optimizer calls should grow with workload size: %v", rows)
	}
	// Optimizer time should be a substantial share of tuning time at the
	// largest size (the paper reports 70–80%).
	if share := parseF(t, rows[len(rows)-1][2]); share < 20 || share > 101 {
		t.Fatalf("optimizer time share implausible: %f%%", share)
	}
}

func TestFig3CompressionApproachesFull(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, Fig3, env)
	rows := tabs[0].Rows
	full := parseF(t, rows[len(rows)-1][1])
	biggestK := parseF(t, rows[len(rows)-2][1])
	if biggestK < full*0.5 {
		t.Fatalf("compressed improvement %f too far from full %f", biggestK, full)
	}
	// Improvement must be non-decreasing-ish in k (allow small noise).
	prev := -1.0
	for _, row := range rows[:len(rows)-1] {
		v := parseF(t, row[1])
		if v < prev-10 {
			t.Fatalf("improvement collapsed with larger k: %v", rows)
		}
		prev = v
	}
}

// TestFig9aISUMCompetitive runs the heaviest experiment (skipped in -short
// mode) and asserts the headline claim: ISUM is at or near the top at the
// largest compressed size on every workload.
func TestFig9aISUMCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9a is expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig9a, env)
	if len(tabs) != 4 {
		t.Fatalf("fig9a tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1]
		// Columns: k, Uniform, Cost, Stratified, GSUM, ISUM, ISUM-S.
		isum := math.Max(parseF(t, last[5]), parseF(t, last[6]))
		bestBaseline := 0.0
		for i := 1; i <= 4; i++ {
			bestBaseline = math.Max(bestBaseline, parseF(t, last[i]))
		}
		if isum < bestBaseline*0.8 {
			t.Errorf("%s: ISUM (%f) far below best baseline (%f)", tab.Title, isum, bestBaseline)
		}
	}
}

func TestFig15DexterRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fig15 is moderately expensive")
	}
	env := fastEnv()
	tabs := runExp(t, Fig15, env)
	if len(tabs) != 2 {
		t.Fatalf("fig15 tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if v := parseF(t, cell); v < -1 || v > 100 {
					t.Fatalf("%s: improvement out of range: %v", tab.Title, row)
				}
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// fmtSscan parses a float cell, tolerating a trailing '%'.
func fmtSscan(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}
