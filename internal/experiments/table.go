package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell (%.4g for floats).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.Columns))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
