package experiments

import "isum/internal/workload"

// Table2 reproduces Table 2: the summary of the four evaluation workloads.
func Table2(env *Env) []*Table {
	t := &Table{
		Title:   "Table 2: workload summary",
		Columns: []string{"name", "#queries", "#templates", "#tables (schema)", "#tables (referenced)"},
	}
	for _, name := range []string{"TPC-H", "TPC-DS", "DSB", "Real-M"} {
		w, _ := env.Workload(name)
		g := env.Generator(name)
		t.AddRow(name, w.Len(), w.NumTemplates(), g.Cat.NumTables(), w.TablesReferenced())
	}
	return []*Table{t}
}

var _ = workload.Fingerprint
