package experiments

import "isum/internal/workload"

// Table2 reproduces Table 2: the summary of the four evaluation workloads.
func Table2(env *Env) ([]*Table, error) {
	t := &Table{
		Title:   "Table 2: workload summary",
		Columns: []string{"name", "#queries", "#templates", "#tables (schema)", "#tables (referenced)"},
	}
	for _, name := range []string{"TPC-H", "TPC-DS", "DSB", "Real-M"} {
		w, _, err := env.Workload(name)
		if err != nil {
			return nil, err
		}
		g, err := env.Generator(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, w.Len(), w.NumTemplates(), g.Cat.NumTables(), w.TablesReferenced())
	}
	return []*Table{t}, nil
}

var _ = workload.Fingerprint
