package experiments

import (
	"fmt"

	"isum/internal/compress"
	"isum/internal/core"
)

// Fig11 reproduces Figure 11: improvement (a, b) and compression time
// (c, d) of the summary-features algorithm vs the all-pairs greedy and
// k-medoid [11] as the input workload grows, on TPC-H and Real-M.
func Fig11(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	sizes := []int{64, 256, 512, 1024, 2048}
	if env.Cfg.Fast {
		sizes = []int{32, 64, 128}
	}
	apOpts := core.DefaultOptions()
	apOpts.Algorithm = core.AllPairs
	algos := []compress.Compressor{
		core.New(apOpts),
		&compress.KMedoid{Seed: env.Cfg.Seed},
		core.New(core.DefaultOptions()),
	}

	var tables []*Table
	for _, name := range []string{"TPC-H", "Real-M"} {
		g, err := env.Generator(name)
		if err != nil {
			return nil, err
		}
		imp := &Table{
			Title:   fmt.Sprintf("Fig 11a/b (%s): improvement %% vs input size", name),
			Columns: append([]string{"n"}, compNames(algos)...),
		}
		tm := &Table{
			Title:   fmt.Sprintf("Fig 11c/d (%s): compression time (ms) vs input size", name),
			Columns: append([]string{"n"}, compNames(algos)...),
		}
		for _, n := range sizes {
			w, err := g.Workload(n, env.Cfg.Seed)
			if err != nil {
				return nil, err
			}
			o := env.freshOptimizer(g)
			if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
				return nil, err
			}
			k := halfSqrt(n)
			aopts, err := env.AdvisorOptions(name)
			if err != nil {
				return nil, err
			}
			impRow := []any{n}
			tmRow := []any{n}
			for _, algo := range algos {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				res := algo.Compress(w, k)
				tmRow = append(tmRow, float64(res.Elapsed.Microseconds())/1000)
				cw := w.WeightedSubset(res.Indices, res.Weights)
				tuned, err := advisorTune(ctx, o, cw, aopts)
				if err != nil {
					return nil, err
				}
				pct, _, _, err := evaluate(ctx, o, w, tuned)
				if err != nil {
					return nil, err
				}
				impRow = append(impRow, pct)
			}
			imp.AddRow(impRow...)
			tm.AddRow(tmRow...)
		}
		tables = append(tables, imp, tm)
	}
	return tables, nil
}
