package experiments

import (
	"fmt"

	"isum/internal/benchmarks"
	"isum/internal/compress"
	"isum/internal/core"
	"isum/internal/cost"
)

// freshOptimizer returns a new optimizer over a generator's catalog,
// registered against the environment's telemetry (if any) so per-figure
// breakdowns attribute its what-if calls.
func (e *Env) freshOptimizer(g *benchmarks.Generator) *cost.Optimizer {
	return cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), e.Cfg.Telemetry)
}

// Fig11 reproduces Figure 11: improvement (a, b) and compression time
// (c, d) of the summary-features algorithm vs the all-pairs greedy and
// k-medoid [11] as the input workload grows, on TPC-H and Real-M.
func Fig11(env *Env) []*Table {
	sizes := []int{64, 256, 512, 1024, 2048}
	if env.Cfg.Fast {
		sizes = []int{32, 64, 128}
	}
	apOpts := core.DefaultOptions()
	apOpts.Algorithm = core.AllPairs
	algos := []compress.Compressor{
		core.New(apOpts),
		&compress.KMedoid{Seed: env.Cfg.Seed},
		core.New(core.DefaultOptions()),
	}

	var tables []*Table
	for _, name := range []string{"TPC-H", "Real-M"} {
		g := env.Generator(name)
		imp := &Table{
			Title:   fmt.Sprintf("Fig 11a/b (%s): improvement %% vs input size", name),
			Columns: append([]string{"n"}, compNames(algos)...),
		}
		tm := &Table{
			Title:   fmt.Sprintf("Fig 11c/d (%s): compression time (ms) vs input size", name),
			Columns: append([]string{"n"}, compNames(algos)...),
		}
		for _, n := range sizes {
			w, err := g.Workload(n, env.Cfg.Seed)
			if err != nil {
				panic(err)
			}
			o := env.freshOptimizer(g)
			o.FillCosts(w)
			k := halfSqrt(n)
			aopts := env.AdvisorOptions(name)
			impRow := []any{n}
			tmRow := []any{n}
			for _, algo := range algos {
				res := algo.Compress(w, k)
				tmRow = append(tmRow, float64(res.Elapsed.Microseconds())/1000)
				cw := w.WeightedSubset(res.Indices, res.Weights)
				tuned := advisorTune(o, cw, aopts)
				pct, _, _ := evaluate(o, w, tuned)
				impRow = append(impRow, pct)
			}
			imp.AddRow(impRow...)
			tm.AddRow(tmRow...)
		}
		tables = append(tables, imp, tm)
	}
	return tables
}
