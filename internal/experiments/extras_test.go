package experiments

import "testing"

func TestExtraNormAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("norm ablation runs several pipelines")
	}
	env := fastEnv()
	tabs := runExp(t, ExtraNormAblation, env)
	if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
		t.Fatalf("tables = %+v", tabs)
	}
	// All three modes should land in the same ballpark at the largest k —
	// the normalisation deviation is safe (DESIGN.md §5).
	last := tabs[0].Rows[len(tabs[0].Rows)-1]
	def, paper := parseF(t, last[1]), parseF(t, last[2])
	if def < paper-15 {
		t.Errorf("default normalisation much worse than paper-literal: %f vs %f", def, paper)
	}
}

func TestExtraAdvisorAblation(t *testing.T) {
	env := fastEnv()
	tabs := runExp(t, ExtraAdvisorAblation, env)
	rows := tabs[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := parseF(t, rows[0][1])
	neither := parseF(t, rows[3][1])
	if full < neither {
		t.Fatalf("full advisor (%f) should beat stripped advisor (%f)", full, neither)
	}
}

func TestExtraIncrementalTracksOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("incremental experiment is moderately expensive")
	}
	env := fastEnv()
	tabs := runExp(t, ExtraIncremental, env)
	rows := tabs[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	inc, os := parseF(t, last[2]), parseF(t, last[3])
	if inc < os*0.6 {
		t.Errorf("incremental (%f) too far below one-shot (%f)", inc, os)
	}
}
