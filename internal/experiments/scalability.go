package experiments

import (
	"fmt"
	"time"

	"isum/internal/advisor"
	"isum/internal/core"
)

// Fig2 reproduces Figure 2: index-tuning time (2a) and configurations
// explored (2b) as the TPC-DS workload grows — the scalability motivation
// for workload compression.
func Fig2(env *Env) []*Table {
	sizes := []int{1, 20, 40, 60, 80, 92}
	if env.Cfg.Fast {
		sizes = []int{1, 8, 16, 24}
	}
	g := env.Generator("TPC-DS")
	t := &Table{
		Title: "Fig 2: tuning scalability vs workload size (TPC-DS)",
		Columns: []string{"queries", "tuning time (s)", "optimizer time %",
			"optimizer calls", "configs explored", "indexes"},
	}
	for _, n := range sizes {
		// Fresh workload and optimizer per point so caches don't flatter the
		// larger runs.
		w, err := g.Workload(n, env.Cfg.Seed)
		if err != nil {
			panic(err)
		}
		o := env.freshOptimizer(g)
		o.FillCosts(w)
		o.ResetCounters()
		aopts := env.AdvisorOptions("TPC-DS")
		res := advisor.New(o, aopts).Tune(w)
		share := 0.0
		if res.Elapsed > 0 {
			share = float64(o.CostTime()) / float64(res.Elapsed) * 100
		}
		t.AddRow(n, res.Elapsed.Seconds(), share, res.OptimizerCalls, res.ConfigsExplored, res.Config.Len())
	}
	return []*Table{t}
}

// Fig3 reproduces Figure 3: improvement of the compressed workload vs the
// full workload on 92 distinct TPC-DS queries, including the end-to-end
// (compression + tuning) time.
func Fig3(env *Env) []*Table {
	g := env.Generator("TPC-DS")
	n := 92
	if env.Cfg.Fast {
		n = 46
	}
	w, err := g.Workload(n, env.Cfg.Seed)
	if err != nil {
		panic(err)
	}
	o := env.freshOptimizer(g)
	o.FillCosts(w)
	aopts := env.AdvisorOptions("TPC-DS")

	fullStart := time.Now()
	fullRes := advisor.New(o, aopts).Tune(w)
	fullTime := time.Since(fullStart)
	fullPct, _, _ := advisor.EvaluateImprovement(o, w, fullRes.Config)

	t := &Table{
		Title:   fmt.Sprintf("Fig 3: compressed vs full workload tuning (TPC-DS, n=%d)", n),
		Columns: []string{"compressed size", "improvement %", "full-workload improvement %", "total time (s)"},
	}
	ks := []int{1, 2, 4, 8, 16, 20, 24}
	if env.Cfg.Fast {
		ks = []int{1, 4, 8, 16}
	}
	comp := core.New(core.DefaultOptions())
	for _, k := range ks {
		start := time.Now()
		res := comp.Compress(w, k)
		cw := w.WeightedSubset(res.Indices, res.Weights)
		tuned := advisor.New(o, aopts).Tune(cw)
		elapsed := time.Since(start)
		pct, _, _ := advisor.EvaluateImprovement(o, w, tuned.Config)
		t.AddRow(k, pct, fullPct, elapsed.Seconds())
	}
	t.AddRow("full", fullPct, fullPct, fullTime.Seconds())
	return []*Table{t}
}
