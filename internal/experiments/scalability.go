package experiments

import (
	"fmt"
	"time"

	"isum/internal/advisor"
	"isum/internal/core"
)

// Fig2 reproduces Figure 2: index-tuning time (2a) and configurations
// explored (2b) as the TPC-DS workload grows — the scalability motivation
// for workload compression.
func Fig2(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	sizes := []int{1, 20, 40, 60, 80, 92}
	if env.Cfg.Fast {
		sizes = []int{1, 8, 16, 24}
	}
	g, err := env.Generator("TPC-DS")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fig 2: tuning scalability vs workload size (TPC-DS)",
		Columns: []string{"queries", "tuning time (s)", "optimizer time %",
			"optimizer calls", "configs explored", "indexes"},
	}
	for _, n := range sizes {
		// Fresh workload and optimizer per point so caches don't flatter the
		// larger runs.
		w, err := g.Workload(n, env.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		o := env.freshOptimizer(g)
		if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
			return nil, err
		}
		o.ResetCounters()
		aopts, err := env.AdvisorOptions("TPC-DS")
		if err != nil {
			return nil, err
		}
		res, err := advisor.New(o, aopts).TuneContext(ctx, w)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctxError(ctx)
		}
		share := 0.0
		if res.Elapsed > 0 {
			share = float64(o.CostTime()) / float64(res.Elapsed) * 100
		}
		t.AddRow(n, res.Elapsed.Seconds(), share, res.OptimizerCalls, res.ConfigsExplored, res.Config.Len())
	}
	return []*Table{t}, nil
}

// Fig3 reproduces Figure 3: improvement of the compressed workload vs the
// full workload on 92 distinct TPC-DS queries, including the end-to-end
// (compression + tuning) time.
func Fig3(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	g, err := env.Generator("TPC-DS")
	if err != nil {
		return nil, err
	}
	n := 92
	if env.Cfg.Fast {
		n = 46
	}
	w, err := g.Workload(n, env.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	o := env.freshOptimizer(g)
	if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
		return nil, err
	}
	aopts, err := env.AdvisorOptions("TPC-DS")
	if err != nil {
		return nil, err
	}

	fullStart := time.Now() //lint:allow determinism Fig. 11 wall-clock column; figure values come from costs, not the clock
	fullCfg, err := advisorTune(ctx, o, w, aopts)
	if err != nil {
		return nil, err
	}
	fullTime := time.Since(fullStart)
	fullPct, _, _, err := evaluate(ctx, o, w, fullCfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("Fig 3: compressed vs full workload tuning (TPC-DS, n=%d)", n),
		Columns: []string{"compressed size", "improvement %", "full-workload improvement %", "total time (s)"},
	}
	ks := []int{1, 2, 4, 8, 16, 20, 24}
	if env.Cfg.Fast {
		ks = []int{1, 4, 8, 16}
	}
	comp := core.New(core.DefaultOptions())
	for _, k := range ks {
		start := time.Now() //lint:allow determinism Fig. 11 wall-clock column; figure values come from costs, not the clock
		res, err := comp.CompressContext(ctx, w, k)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, ctxError(ctx)
		}
		cw := w.WeightedSubset(res.Indices, res.Weights)
		cfg, err := advisorTune(ctx, o, cw, aopts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		pct, _, _, err := evaluate(ctx, o, w, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, pct, fullPct, elapsed.Seconds())
	}
	t.AddRow("full", fullPct, fullPct, fullTime.Seconds())
	return []*Table{t}, nil
}
