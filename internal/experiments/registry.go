package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"isum/internal/telemetry"
)

// Runner produces the tables for one paper figure/table. A runner returns
// an error instead of panicking: workload-generation failures, what-if
// failures that survive the retry policy, and cancellation of the run
// context all surface here and are threaded to a non-zero exit in
// cmd/experiments.
type Runner func(*Env) ([]*Table, error)

// Registry maps experiment ids to runners — one entry per table and figure
// in the paper's evaluation.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig2":   Fig2,
		"fig3":   Fig3,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9a":  Fig9a,
		"fig9b":  Fig9b,
		"fig10":  Fig10,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  Fig14,
		"fig15":  Fig15,
		"table2": Table2,
		"table3": Table3,
		// Implementation ablations beyond the paper (DESIGN.md §5).
		"extra-norm":        ExtraNormAblation,
		"extra-advisor":     ExtraAdvisorAblation,
		"extra-incremental": ExtraIncremental,
	}
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id and writes its tables to w. With
// Config.Telemetry set, the run is wrapped in an experiments/<id> span and
// a per-figure phase breakdown — elapsed time plus the counter deltas the
// figure caused (what-if calls, cache hits/misses, greedy rounds) — is
// written right after the figure's tables.
func Run(env *Env, id string, w io.Writer) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	sp := env.Cfg.Telemetry.Start("experiments/" + id)
	tables, err := r(env)
	sp.End()
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	for _, t := range tables {
		if err := t.Write(w); err != nil {
			return err
		}
	}
	if env.Cfg.Telemetry != nil {
		if err := telemetryBreakdown(id, sp).Write(w); err != nil {
			return err
		}
	}
	return nil
}

// telemetryBreakdown renders one figure's span into the phase-breakdown
// table written next to its results.
func telemetryBreakdown(id string, sp *telemetry.Span) *Table {
	t := &Table{
		Title:   "telemetry " + id,
		Columns: []string{"metric", "value"},
	}
	t.AddRow("elapsed", sp.Duration().Round(time.Microsecond).String())
	// Collapse the per-shard cache counters into totals — 64 shard rows
	// would drown the breakdown; the full split stays in the JSON export.
	rollup := map[string]int64{}
	for name, d := range sp.CounterDeltas() {
		if strings.HasPrefix(name, "cost/cache/shard") {
			if strings.HasSuffix(name, "/hits") {
				name = "cost/cache/hits"
			} else {
				name = "cost/cache/misses"
			}
		}
		rollup[name] += d
	}
	names := make([]string, 0, len(rollup))
	for name := range rollup {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, rollup[name])
	}
	return t
}

// RunAll executes every experiment in name order.
func RunAll(env *Env, w io.Writer) error {
	for _, id := range Names() {
		if err := Run(env, id, w); err != nil {
			return err
		}
	}
	return nil
}
