package experiments

import (
	"fmt"

	"isum/internal/benchmarks"
)

// Fig12 reproduces Figure 12: sensitivity to workload characteristics on
// DSB — (a) varying instances per template, (b–d) varying query complexity
// class (SPJ / Aggregate / Complex).
func Fig12(env *Env) ([]*Table, error) {
	ctx := env.Cfg.Context()
	g, err := env.Generator("DSB")
	if err != nil {
		return nil, err
	}
	comps := StandardCompressors(env.Cfg.Seed)
	aopts, err := env.AdvisorOptions("DSB")
	if err != nil {
		return nil, err
	}
	var tables []*Table

	// (a) instances per template.
	instances := []int{1, 2, 4, 8}
	if env.Cfg.Fast {
		instances = []int{1, 2, 4}
	}
	ta := &Table{
		Title:   "Fig 12a (DSB): improvement % vs instances per template",
		Columns: append([]string{"instances"}, compNames(comps)...),
	}
	for _, inst := range instances {
		w, err := g.WorkloadPerTemplate(inst, env.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		o := env.freshOptimizer(g)
		if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
			return nil, err
		}
		k := halfSqrt(w.Len())
		row := []any{inst}
		for _, c := range comps {
			pct, err := RunPipeline(ctx, o, w, c, k, aopts)
			if err != nil {
				return nil, err
			}
			row = append(row, pct)
		}
		ta.AddRow(row...)
	}
	tables = append(tables, ta)

	// (b–d) query complexity classes.
	n := env.Cfg.WorkloadSize("DSB")
	for _, class := range []benchmarks.QueryClass{
		benchmarks.ClassSPJ, benchmarks.ClassAggregate, benchmarks.ClassComplex,
	} {
		w, err := g.WorkloadByClass(class, n, env.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		o := env.freshOptimizer(g)
		if err := o.FillCostsCtx(ctx, w, env.Cfg.Parallelism); err != nil {
			return nil, err
		}
		t := &Table{
			Title:   fmt.Sprintf("Fig 12b-d (DSB %s): improvement %% vs compressed size", class),
			Columns: append([]string{"k"}, compNames(comps)...),
		}
		for _, k := range env.Cfg.KSweep(w.Len()) {
			row := []any{k}
			for _, c := range comps {
				pct, err := RunPipeline(ctx, o, w, c, k, aopts)
				if err != nil {
					return nil, err
				}
				row = append(row, pct)
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
