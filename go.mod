module isum

go 1.22
