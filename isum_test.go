package isum_test

import (
	"bytes"
	"context"
	"strings"
	"time"

	"testing"

	"isum"
)

// TestPublicAPIPipeline exercises the façade end to end: generate → cost →
// compress → tune → evaluate, entirely through the public names.
func TestPublicAPIPipeline(t *testing.T) {
	gen := isum.TPCH(1)
	w, err := gen.Workload(44, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := isum.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	cw, res := isum.Compress(w, 6)
	if cw.Len() != 6 || len(res.Weights) != 6 {
		t.Fatalf("compressed = %d queries", cw.Len())
	}

	opts := isum.DefaultAdvisorOptions()
	opts.MaxIndexes = 10
	tuned := isum.Tune(o, cw, opts)
	if tuned.Config.Len() == 0 {
		t.Fatal("no indexes recommended")
	}

	pct, before, after := isum.Evaluate(o, w, tuned.Config)
	if pct <= 0 || after >= before {
		t.Fatalf("no improvement: %f%% (%f -> %f)", pct, before, after)
	}
}

// TestPublicAPICustomCatalog checks that a user-built catalog and workload
// work through the façade.
func TestPublicAPICustomCatalog(t *testing.T) {
	cat := isum.NewCatalog()
	tab := isum.NewCatalogTable("items", 100000)
	tab.AddColumn(&isum.Column{Name: "id", Type: 0, DistinctCount: 100000, Min: 1, Max: 100000})
	tab.AddColumn(&isum.Column{Name: "price", Type: 2, DistinctCount: 5000, Min: 0, Max: 1000})
	cat.AddTable(tab)

	w, err := isum.NewWorkload(cat, []string{
		"SELECT price FROM items WHERE id = 7",
		"SELECT id FROM items WHERE price > 900",
	})
	if err != nil {
		t.Fatal(err)
	}
	isum.NewOptimizer(cat).FillCosts(w)
	cw, _ := isum.Compress(w, 1)
	if cw.Len() != 1 {
		t.Fatalf("compressed = %d", cw.Len())
	}
}

// TestVariantOptions checks the documented variant constructors.
func TestVariantOptions(t *testing.T) {
	d := isum.DefaultOptions()
	s := isum.ISUMSOptions()
	if d.FeatureMode == s.FeatureMode {
		t.Fatal("ISUM-S should switch feature mode")
	}
	if isum.NewCompressor(d).Name() != "ISUM" || isum.NewCompressor(s).Name() != "ISUM-S" {
		t.Fatal("variant names wrong")
	}
	if isum.DexterAdvisorOptions().MinImprovement != 0.05 {
		t.Fatal("dexter threshold wrong")
	}
}

// TestFacadeExtensions covers Explain, Report, and NewIncremental through
// the public API.
func TestFacadeExtensions(t *testing.T) {
	gen := isum.TPCH(1)
	w, err := gen.Workload(44, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := isum.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	cw, _ := isum.Compress(w, 6)
	opts := isum.DefaultAdvisorOptions()
	opts.MaxIndexes = 8
	tuned := isum.Tune(o, cw, opts)

	plan := isum.Explain(o, w.Queries[0], tuned.Config)
	if plan.Total <= 0 {
		t.Fatal("plan cost missing")
	}
	rep := isum.Report(o, w, tuned.Config)
	if len(rep.Queries) != w.Len() || rep.ImprovementPct <= 0 {
		t.Fatalf("report = %d queries, %.1f%%", len(rep.Queries), rep.ImprovementPct)
	}

	ic := isum.NewIncremental(gen.Cat, isum.DefaultOptions(), 5)
	ic.Observe(w.Queries[:20])
	ic.Observe(w.Queries[20:])
	if ic.Pool().Len() != 5 || ic.Seen() != 44 {
		t.Fatalf("incremental pool=%d seen=%d", ic.Pool().Len(), ic.Seen())
	}
}

// TestAllBenchmarksEndToEnd runs the full pipeline on every benchmark
// generator through the public API.
func TestAllBenchmarksEndToEnd(t *testing.T) {
	gens := []*isum.BenchmarkGenerator{
		isum.TPCH(1), isum.TPCDS(1), isum.DSB(1), isum.RealM(3),
	}
	for _, gen := range gens {
		gen := gen
		t.Run(gen.Name, func(t *testing.T) {
			w, err := gen.Workload(40, 1)
			if err != nil {
				t.Fatal(err)
			}
			o := isum.NewOptimizer(gen.Cat)
			o.FillCosts(w)
			cw, _ := isum.Compress(w, 6)
			opts := isum.DefaultAdvisorOptions()
			opts.MaxIndexes = 8
			tuned := isum.Tune(o, cw, opts)
			pct, _, _ := isum.Evaluate(o, w, tuned.Config)
			if pct <= 0 {
				t.Fatalf("%s: no improvement (%f)", gen.Name, pct)
			}
			if pct > 100 {
				t.Fatalf("%s: impossible improvement %f", gen.Name, pct)
			}
		})
	}
}

// TestFacadeSerialization round-trips a catalog, a workload log, and a
// configuration through the public load/save APIs.
func TestFacadeSerialization(t *testing.T) {
	gen := isum.TPCH(1)
	w, _ := gen.Workload(10, 1)
	o := isum.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	var catBuf, wBuf, cfgBuf bytes.Buffer
	if err := gen.Cat.SaveJSON(&catBuf); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(&wBuf); err != nil {
		t.Fatal(err)
	}
	cat2, err := isum.LoadCatalog(&catBuf)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := isum.LoadWorkload(cat2, &wBuf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != w.Len() || w2.TotalCost() != w.TotalCost() {
		t.Fatal("workload round trip lost data")
	}

	cw, _ := isum.Compress(w2, 3)
	opts := isum.DefaultAdvisorOptions()
	opts.MaxIndexes = 4
	tuned := isum.Tune(isum.NewOptimizer(cat2), cw, opts)
	if err := tuned.Config.SaveJSON(&cfgBuf); err != nil {
		t.Fatal(err)
	}
	cfg2, err := isum.LoadConfiguration(&cfgBuf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Fingerprint() != tuned.Config.Fingerprint() {
		t.Fatal("configuration round trip lost data")
	}

	sw, err := isum.LoadSQLScript(cat2, strings.NewReader(
		"SELECT o_totalprice FROM orders WHERE o_custkey = 3; SELECT 1;"))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 2 {
		t.Fatalf("script len = %d", sw.Len())
	}
}

// TestFacadeFailureModel exercises the DESIGN.md §9 surface through the
// public names: context variants, anytime partials, chaos + retries.
func TestFacadeFailureModel(t *testing.T) {
	gen := isum.TPCH(1)
	w, err := gen.Workload(44, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := isum.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	// Background context matches the plain path exactly.
	cw, res := isum.Compress(w, 6)
	ctxCW, ctxRes, err := isum.CompressContext(context.Background(), w, 6)
	if err != nil || ctxRes.Partial {
		t.Fatalf("background CompressContext: err=%v partial=%v", err, ctxRes.Partial)
	}
	if cw.Len() != ctxCW.Len() || len(res.Weights) != len(ctxRes.Weights) {
		t.Fatal("Compress and CompressContext diverge")
	}

	// A cancelled context yields an anytime partial, never an error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, pres, err := isum.CompressContext(cancelled, w, 6)
	if err != nil || !pres.Partial {
		t.Fatalf("cancelled CompressContext: err=%v partial=%v", err, pres.Partial)
	}
	if !isum.IsCancellation(cancelled.Err()) {
		t.Fatal("IsCancellation")
	}

	// Chaos with retries reproduces the fault-free recommendation.
	cfg, err := isum.ParseChaosSpec("seed=13,errors=0.3")
	if err != nil {
		t.Fatal(err)
	}
	co := isum.NewOptimizer(gen.Cat)
	co.SetInjector(isum.NewFaultInjector(cfg))
	rp := isum.DefaultRetryPolicy()
	rp.MaxAttempts = 40
	rp.BaseDelay = time.Microsecond
	co.SetRetryPolicy(rp)

	opts := isum.DefaultAdvisorOptions()
	opts.MaxIndexes = 5
	plain, err := isum.TuneContext(context.Background(), o, cw, opts)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := isum.TuneContext(context.Background(), co, cw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Config.Fingerprint() != chaos.Config.Fingerprint() {
		t.Fatal("chaos run diverged from the fault-free recommendation")
	}

	if _, _, _, err := isum.EvaluateContext(context.Background(), o, w, plain.Config); err != nil {
		t.Fatal(err)
	}
}
