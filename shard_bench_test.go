package isum_test

// Million-query-scale benchmarks for the sharded/hash-consed compression
// path, recorded to BENCH_shard.json by scripts/ci.sh. Two pairs:
//
//   - BenchmarkCompressSharded workers=1 vs workers=4: wall-clock of the
//     shards=8 path on a 10⁵-query template-expanded Scale-M workload.
//     On a GOMAXPROCS≥2 runner the 4-worker variant should be ≥2× faster;
//     on a single-core runner both degenerate to serial and show parity
//     (the ci.sh bench gate refuses to record that silently).
//   - BenchmarkCompressConsed cons=off vs cons=on: the single-core
//     speedup of template hash-consing itself — the same workload
//     collapses from 10⁵ per-query states to ~2×10³ per-template states
//     before the greedy loop runs.
//
// Run just these pairs with:
//
//	go test -bench '^(BenchmarkCompressSharded|BenchmarkCompressConsed)$' -benchtime 1x

import (
	"sync"
	"testing"

	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/workload"
)

const (
	scaleBenchQueries   = 100_000
	scaleBenchTemplates = 2_000
	scaleBenchK         = 40
)

var scaleBench struct {
	once sync.Once
	w    *workload.Workload
	err  error
}

// scaleBenchWorkload builds (once per test binary) the 10⁵-query Scale-M
// workload with costs filled — the setup is minutes of parsing and
// costing, shared across benchmark variants and iterations.
func scaleBenchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	scaleBench.once.Do(func() {
		gen := benchmarks.ScaleM(1, scaleBenchTemplates)
		w, err := gen.Workload(scaleBenchQueries, 1)
		if err != nil {
			scaleBench.err = err
			return
		}
		cost.NewOptimizer(gen.Cat).FillCosts(w)
		scaleBench.w = w
	})
	if scaleBench.err != nil {
		b.Fatal(scaleBench.err)
	}
	return scaleBench.w
}

func BenchmarkCompressSharded(b *testing.B) {
	w := scaleBenchWorkload(b)
	for _, v := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=4", 4}} {
		opts := core.DefaultOptions()
		opts.ConsTemplates = true
		opts.Shards = 8
		opts.Parallelism = v.workers
		comp := core.New(opts)
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp.Compress(w, scaleBenchK)
			}
		})
	}
}

func BenchmarkCompressConsed(b *testing.B) {
	w := scaleBenchWorkload(b)
	for _, v := range []struct {
		name string
		cons bool
	}{{"cons=off", false}, {"cons=on", true}} {
		opts := core.DefaultOptions()
		opts.ConsTemplates = v.cons
		opts.Parallelism = 1
		comp := core.New(opts)
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp.Compress(w, scaleBenchK)
			}
		})
	}
}
