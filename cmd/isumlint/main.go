// Command isumlint is the repo's custom static-analysis gate: it
// enforces the pipeline's determinism, context, concurrency, telemetry,
// and anytime-contract invariants (DESIGN.md §10) over the whole module
// using only the standard library's go/ast and go/types.
//
// Usage:
//
//	isumlint [-json] [-list] [patterns]
//
// Patterns are package directories relative to the module root, with an
// optional /... suffix ("./...", "./internal/...", "internal/core").
// With no patterns (or "./..."), the whole module is linted. Test files
// are not analyzed. Findings print one per line in machine-readable
// form:
//
//	file.go:12:4: [determinism] time.Now is wall-clock nondeterminism; ...
//
// A finding is suppressed by a reasoned escape hatch on its line (or a
// standalone comment directly above):
//
//	start := time.Now() //lint:allow determinism phase timing only
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"isum/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the analyzers and the invariants they guard, then exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.ID, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	filters, err := compilePatterns(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	var findings []analysis.Finding
	for _, pkg := range pkgs {
		if !filters.match(root, pkg.Dir) {
			continue
		}
		findings = append(findings, analysis.RunPackage(pkg, analysis.Analyzers())...)
	}
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "isumlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "isumlint: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isumlint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// patternSet filters package directories by the CLI patterns.
type patternSet struct {
	all      bool
	prefixes []string // dir prefixes (for /... patterns)
	exact    []string // exact dirs
}

func compilePatterns(root string, args []string) (*patternSet, error) {
	ps := &patternSet{}
	if len(args) == 0 {
		ps.all = true
		return ps, nil
	}
	for _, a := range args {
		p := strings.TrimPrefix(filepath.ToSlash(a), "./")
		if p == "..." || p == "" {
			ps.all = true
			continue
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if rest == "" || rest == "." {
				ps.all = true
			} else {
				ps.prefixes = append(ps.prefixes, filepath.Join(root, filepath.FromSlash(rest)))
			}
			continue
		}
		ps.exact = append(ps.exact, filepath.Join(root, filepath.FromSlash(p)))
	}
	return ps, nil
}

func (ps *patternSet) match(root, dir string) bool {
	if ps.all {
		return true
	}
	for _, e := range ps.exact {
		if dir == e {
			return true
		}
	}
	for _, p := range ps.prefixes {
		if dir == p || strings.HasPrefix(dir, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
