// Command isumlint is the repo's custom static-analysis gate: it
// enforces the pipeline's determinism, context, concurrency, telemetry,
// anytime-contract, allocation, durability, lock-safety, and
// error-hygiene invariants (DESIGN.md §10, §15) over the whole module
// using only the standard library's go/ast and go/types.
//
// Usage:
//
//	isumlint [-json] [-list] [-fix] [-diff] [-sarif file] [-baseline file]
//	         [-write-baseline] [-prune-allows] [patterns]
//
// Patterns are package directories relative to the module root, with an
// optional /... suffix ("./...", "./internal/...", "internal/core").
// With no patterns (or "./..."), the whole module is linted. Test files
// are not analyzed. Findings print one per line in machine-readable
// form:
//
//	file.go:12:4: [determinism] time.Now is wall-clock nondeterminism; ...
//
// A finding is suppressed by a reasoned escape hatch on its line (or a
// standalone comment directly above):
//
//	start := time.Now() //lint:allow determinism phase timing only
//
// Modes:
//
//	-fix             apply suggested fixes in place, then re-lint and
//	                 report what remains
//	-diff            print the fixes as unified diffs without writing
//	-sarif file      also write the findings as a SARIF 2.1.0 log
//	-baseline file   drop findings recorded in the baseline; stale
//	                 baseline entries (recorded but gone) still fail
//	-write-baseline  record the current findings as the new baseline
//	-prune-allows    report only stale //lint:allow directives (with
//	                 -fix: delete them)
//
// Exit status: 0 clean, 1 findings (or stale baseline entries), 2 load
// or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"isum/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the analyzers and the invariants they guard, then exit")
	fix := flag.Bool("fix", false, "apply suggested fixes in place, then re-lint")
	diff := flag.Bool("diff", false, "print suggested fixes as unified diffs (dry run)")
	sarifPath := flag.String("sarif", "", "write findings as a SARIF 2.1.0 log to this file")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.Bool("write-baseline", false, "record current findings to the baseline file (default .lintbaseline)")
	pruneAllows := flag.Bool("prune-allows", false, "report stale //lint:allow directives only (-fix deletes them)")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.ID, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	filters, err := compilePatterns(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	findings, sources, err := lint(root, filters, *pruneAllows)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = filepath.Join(root, ".lintbaseline")
		}
		b := analysis.NewBaseline(findings, root)
		if err := os.WriteFile(path, b.Format(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "isumlint: wrote %d baseline entr%s to %s\n",
			len(b), plural(len(b), "y", "ies"), path)
		return
	}

	var stale []string
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		b, err := analysis.ParseBaseline(data)
		if err != nil {
			fatal(err)
		}
		findings, stale = analysis.ApplyBaseline(findings, b, root)
	}

	switch {
	case *diff:
		printDiffs(findings, sources, root)
	case *fix:
		n, err := writeFixes(findings, sources)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "isumlint: rewrote %d file%s\n", n, plural(n, "", "s"))
		if n > 0 {
			// Re-lint so the report reflects the fixed tree.
			findings, _, err = lint(root, filters, *pruneAllows)
			if err != nil {
				fatal(err)
			}
			if *baselinePath != "" {
				data, err := os.ReadFile(*baselinePath)
				if err == nil {
					if b, perr := analysis.ParseBaseline(data); perr == nil {
						findings, stale = analysis.ApplyBaseline(findings, b, root)
					}
				}
			}
		}
	}

	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}

	if *sarifPath != "" {
		doc, err := analysis.SARIF(findings, analysis.Analyzers(), "")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*sarifPath, doc, 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Fixable  bool   `json:"fixable,omitempty"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message, Fixable: len(f.Fixes) > 0,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else if !*diff {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "isumlint: stale baseline entry: %s\n", s)
	}
	if len(findings) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "isumlint: %d finding(s), %d stale baseline entr%s\n",
			len(findings), len(stale), plural(len(stale), "y", "ies"))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "isumlint: ok")
}

// lint loads the module and runs the suite (or the allow-pruning subset)
// over every package matching the filters. It returns findings with
// absolute filenames plus the merged filename -> source map the fix
// modes edit against. Zero matched packages is an error: a typo'd
// pattern must not read as a clean run.
func lint(root string, filters *patternSet, pruneAllows bool) ([]analysis.Finding, map[string][]byte, error) {
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	var findings []analysis.Finding
	sources := make(map[string][]byte)
	matched := 0
	for _, pkg := range pkgs {
		if !filters.match(root, pkg.Dir) {
			continue
		}
		matched++
		if pruneAllows {
			findings = append(findings, analysis.PruneAllows(pkg, analysis.Analyzers())...)
		} else {
			findings = append(findings, analysis.RunPackage(pkg, analysis.Analyzers())...)
		}
		for name, src := range pkg.Sources {
			sources[name] = src
		}
	}
	if matched == 0 {
		return nil, nil, fmt.Errorf("no packages under %s match the given patterns", root)
	}
	return findings, sources, nil
}

// printDiffs renders every applicable fix as a unified diff on stdout.
func printDiffs(findings []analysis.Finding, sources map[string][]byte, root string) {
	changed, _, _ := analysis.ApplyFixes(findings, sources)
	names := make([]string, 0, len(changed))
	for name := range changed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		display := name
		if rel, err := filepath.Rel(root, name); err == nil {
			display = rel
		}
		fmt.Print(analysis.Diff(display, sources[name], changed[name]))
	}
}

// writeFixes applies every suggested fix in place and returns how many
// files were rewritten.
func writeFixes(findings []analysis.Finding, sources map[string][]byte) (int, error) {
	changed, _, _ := analysis.ApplyFixes(findings, sources)
	names := make([]string, 0, len(changed))
	for name := range changed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(name); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(name, changed[name], mode); err != nil {
			return 0, err
		}
	}
	return len(changed), nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isumlint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// patternSet filters package directories by the CLI patterns.
type patternSet struct {
	all      bool
	prefixes []string // dir prefixes (for /... patterns)
	exact    []string // exact dirs
}

func compilePatterns(root string, args []string) (*patternSet, error) {
	ps := &patternSet{}
	if len(args) == 0 {
		ps.all = true
		return ps, nil
	}
	for _, a := range args {
		p := strings.TrimPrefix(filepath.ToSlash(a), "./")
		if p == "..." || p == "" {
			ps.all = true
			continue
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if rest == "" || rest == "." {
				ps.all = true
			} else {
				ps.prefixes = append(ps.prefixes, filepath.Join(root, filepath.FromSlash(rest)))
			}
			continue
		}
		ps.exact = append(ps.exact, filepath.Join(root, filepath.FromSlash(p)))
	}
	return ps, nil
}

func (ps *patternSet) match(root, dir string) bool {
	if ps.all {
		return true
	}
	for _, e := range ps.exact {
		if dir == e {
			return true
		}
	}
	for _, p := range ps.prefixes {
		if dir == p || strings.HasPrefix(dir, p+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
