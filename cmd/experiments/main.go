// Command experiments regenerates the paper's evaluation tables and
// figures.
//
// Usage:
//
//	experiments [-fast] [-sf 10] [-seed 1] [-out results.txt] [fig9a table3 ...]
//
// With no experiment ids, every registered experiment runs (see
// DESIGN.md §3 for the id → paper figure/table mapping).
//
// Exit codes: 0 all experiments completed, 1 a real failure occurred,
// 3 the -timeout deadline cut the run short.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"isum/internal/experiments"
	"isum/internal/faults"
	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

var logger = telemetry.NewLogger(os.Stderr)

func main() {
	fast := flag.Bool("fast", false, "use reduced workload sizes (minutes, not hours)")
	sf := flag.Float64("sf", 10, "benchmark scale factor")
	seed := flag.Int64("seed", 1, "workload generation seed")
	out := flag.String("out", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallelism := flag.Int("parallelism", 0,
		"worker goroutines for compression and tuning hot paths (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	shards := flag.Int("shards", 0,
		"shard count for the advisors' workload costing (0/1 = single partition, bit-exact with recorded results)")
	elide := flag.Bool("elide", true,
		"elide redundant what-if optimizer calls via memoized atomic costs and cost bounds (DESIGN.md §16); results are identical either way")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	var ff faults.Flags
	ff.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range experiments.Names() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	trun, err := tf.Open(logger)
	if err != nil {
		fatal(err)
	}
	parallel.SetTelemetry(trun.Registry)
	features.SetTelemetry(trun.Registry)
	shard.SetTelemetry(trun.Registry)
	workload.SetTelemetry(trun.Registry)

	ctx, cancel := ff.Context()
	defer cancel()
	inj, err := ff.BuildInjector(trun.Registry)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{
		Scale: *sf, Seed: *seed, Fast: *fast,
		Parallelism: *parallelism, Shards: *shards, Telemetry: trun.Registry,
		Ctx: ctx, Retry: ff.Policy(), Injector: inj,
		NoElide: !*elide,
	}
	env := experiments.NewEnv(cfg)

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now() //lint:allow determinism per-figure elapsed reporting; results never read the clock
		if err := experiments.Run(env, id, w); err != nil {
			if faults.IsCancellation(err) {
				logger.Warn("deadline reached, stopping (partial output above)", "experiment", id)
				if cerr := trun.Close(); cerr != nil {
					logger.Error("closing telemetry", "err", cerr)
				}
				os.Exit(faults.ExitPartial)
			}
			fatal(err)
		}
		logger.Info("experiment done", "id", id,
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}
	if err := trun.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(faults.ExitFailed)
}
