// Command tune runs an index advisor on a workload (typically a compressed
// one produced by the isum command) and reports the recommended indexes and
// the improvement on an optional evaluation workload.
//
// Usage:
//
//	tune -benchmark tpch -in small.json -eval tpch.json -max-indexes 20 -storage-mult 3
//
// Telemetry: -trace prints the tuning phase tree (candidate selection,
// merging, per-round enumeration with what-if call deltas) to stderr,
// -metrics-out writes the JSON metrics+span export, -trace-out writes
// Perfetto-loadable trace-event JSON, -pprof-dir captures cpu/heap
// profiles around the run (DESIGN.md §8), -debug-addr serves the live
// debug plane, and -progress streams progress lines (DESIGN.md §13).
package main

import (
	"flag"
	"fmt"
	"os"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/catalog"
	"isum/internal/cost"
	"isum/internal/faults"
	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

var logger = telemetry.NewLogger(os.Stderr)

func main() {
	bench := flag.String("benchmark", "tpch", "benchmark catalog: tpch, tpcds, dsb, realm")
	sf := flag.Float64("sf", 10, "scale factor")
	seed := flag.Int64("seed", 1, "seed (for realm catalog)")
	in := flag.String("in", "", "workload JSON to tune (required)")
	eval := flag.String("eval", "", "workload JSON to evaluate improvement on (default: the tuned one)")
	maxIndexes := flag.Int("max-indexes", 20, "configuration size constraint (0 = unlimited)")
	storageMult := flag.Float64("storage-mult", 3, "storage budget as a multiple of database size (0 = unlimited)")
	mode := flag.String("advisor", "dta", "advisor flavour: dta or dexter")
	report := flag.Int("report", 0, "with -eval: print a per-query drill-down of the top N improved queries")
	catalogIn := flag.String("catalog", "", "load the catalog from a JSON export instead of the benchmark schema")
	configOut := flag.String("config-out", "", "save the recommended configuration as JSON")
	parallelism := flag.Int("parallelism", 0,
		"worker goroutines for what-if calls (0 = GOMAXPROCS, 1 = serial); recommendations are identical at any setting")
	shards := flag.Int("shards", 0,
		"shard count for workload costing (0/1 = single partition, bit-exact); shards are hashed by template and folded in fixed order")
	elide := flag.Bool("elide", true,
		"elide redundant what-if optimizer calls via memoized atomic costs and cost bounds (DESIGN.md §16); recommendations are identical either way")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	var ff faults.Flags
	ff.Register(flag.CommandLine)
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	trun, err := tf.Open(logger)
	if err != nil {
		fatal(err)
	}
	reg := trun.Registry
	parallel.SetTelemetry(reg)
	features.SetTelemetry(reg)
	shard.SetTelemetry(reg)
	workload.SetTelemetry(reg)
	ctx, cancel := ff.Context()
	defer cancel()
	g, err := benchmarks.FromName(*bench, *sf, *seed)
	if err != nil {
		fatal(err)
	}
	if *catalogIn != "" {
		cf, err := os.Open(*catalogIn)
		if err != nil {
			fatal(err)
		}
		cat, err := catalog.LoadJSON(cf)
		cf.Close()
		if err != nil {
			fatal(err)
		}
		g.Cat = cat
	}
	load := func(path string) *workload.Workload {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := workload.Load(g.Cat, f)
		if err != nil {
			fatal(err)
		}
		return w
	}
	w := load(*in)

	var opts advisor.Options
	switch *mode {
	case "dta":
		opts = advisor.DefaultOptions()
	case "dexter":
		opts = advisor.DexterOptions()
	default:
		fatal(fmt.Errorf("unknown advisor %q", *mode))
	}
	opts.MaxIndexes = *maxIndexes
	opts.Parallelism = *parallelism
	opts.Shards = *shards
	opts.Telemetry = reg
	opts.Progress = trun.ProgressFunc()
	opts.Elide = *elide
	if *storageMult > 0 {
		opts.StorageBudget = int64(*storageMult * float64(g.Cat.TotalSizeBytes()))
	}

	o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), reg)
	o.SetElision(*elide)
	if err := ff.Apply(o); err != nil {
		fatal(err)
	}
	res, err := advisor.New(o, opts).TuneContext(ctx, w)
	if err != nil {
		fatal(err)
	}
	partial := res.Partial
	if partial {
		logger.Warn("deadline reached; recommendation is the best-so-far configuration", "rounds", res.Rounds)
	}

	fmt.Printf("recommended %d indexes in %v (%d optimizer calls, %d configs explored)\n",
		res.Config.Len(), res.Elapsed.Round(1000), res.OptimizerCalls, res.ConfigsExplored)
	for _, ix := range res.Config.Indexes() {
		fmt.Printf("  %s  (%.1f MB)\n", ix, float64(ix.SizeBytes(g.Cat))/(1<<20))
	}
	fmt.Printf("improvement on tuned workload: %.2f%%\n", res.ImprovementPercent())

	if *configOut != "" {
		f, err := os.Create(*configOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.Config.SaveJSON(f); err != nil {
			fatal(err)
		}
	}

	if *eval != "" {
		ew := load(*eval)
		sp := reg.Start("tune/evaluate")
		pct, base, final, err := advisor.EvaluateImprovementContext(ctx, o, ew, res.Config, *parallelism)
		sp.End()
		switch {
		case err == nil:
			fmt.Printf("improvement on evaluation workload: %.2f%% (cost %.0f -> %.0f)\n", pct, base, final)
			if *report > 0 {
				advisor.Report(o, ew, res.Config).Write(os.Stdout, *report)
			}
		case faults.IsCancellation(err):
			partial = true
			logger.Warn("deadline reached before the evaluation workload could be costed")
		default:
			fatal(err)
		}
	}
	if err := trun.Close(); err != nil {
		fatal(err)
	}
	if partial {
		os.Exit(faults.ExitPartial)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(faults.ExitFailed)
}
