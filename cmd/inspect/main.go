// Command inspect prints what ISUM sees in a workload: template clusters,
// per-query utilities, feature vectors, and the workload summary features —
// useful for understanding why compression picked what it picked.
//
// Usage:
//
//	inspect -benchmark tpch -n 44 [-sf 10] [-top 10] [-features]
//	inspect -benchmark tpcds -in workload.json -top 20
//
// With -wal-dir it instead prints a recovery report for a durable store
// directory (DESIGN.md §14): the state a crashed or closed session
// recovers to — snapshot used, WAL records replayed, corrupt records
// skipped, and the recovered pool. The report is read-only and
// deterministic: running it twice prints byte-identical output. Recovery
// replays the log through the same recompression the writer ran, so -k
// (and the catalog flags) must match the session that wrote the store.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/durable"
	"isum/internal/faults"
	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

var logger = telemetry.NewLogger(os.Stderr)

func main() {
	bench := flag.String("benchmark", "tpch", "benchmark catalog: tpch, tpcds, dsb, realm")
	sf := flag.Float64("sf", 10, "scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	n := flag.Int("n", 44, "generated workload size (ignored with -in)")
	in := flag.String("in", "", "workload JSON to inspect instead of generating")
	top := flag.Int("top", 10, "how many queries to detail")
	showFeatures := flag.Bool("features", false, "print feature vectors for the top queries")
	shards := flag.Int("shards", 0, "also print the template-hash shard layout a sharded compression would use")
	k := flag.Int("k", 20, "pool size of the durable session being inspected (with -wal-dir)")
	elide := flag.Bool("elide", true,
		"elide redundant what-if optimizer calls via memoized atomic costs and cost bounds (DESIGN.md §16); results are identical either way")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	var ff faults.Flags
	ff.Register(flag.CommandLine)
	var df durable.Flags
	df.Register(flag.CommandLine)
	flag.Parse()

	trun, err := tf.Open(logger)
	if err != nil {
		fatal(err)
	}
	reg := trun.Registry
	parallel.SetTelemetry(reg)
	features.SetTelemetry(reg)
	shard.SetTelemetry(reg)
	workload.SetTelemetry(reg)
	ctx, cancel := ff.Context()
	defer cancel()

	g, err := benchmarks.FromName(*bench, *sf, *seed)
	if err != nil {
		fatal(err)
	}

	if df.Enabled() {
		dopts, err := df.Build()
		if err != nil {
			fatal(err)
		}
		dopts.Catalog = g.Cat
		dopts.Compressor = core.DefaultOptions()
		dopts.Compressor.Telemetry = reg
		dopts.PoolSize = *k
		dopts.Telemetry = reg
		ic, rinfo, err := durable.Recover(ctx, dopts)
		if err != nil {
			fatal(err)
		}
		logger.Info("recovered durable store", "dir", df.Dir,
			"elapsed", rinfo.Elapsed.Round(1000).String())
		fmt.Printf("durable store: %s\n", df.Dir)
		fmt.Printf("recovered state: lsn %d, %d queries seen, pool %d\n",
			rinfo.LSN, rinfo.Seen, ic.Pool().Len())
		fmt.Printf("recovery: snapshot lsn %d (%d skipped), %d records replayed, %d corrupt skipped\n",
			rinfo.SnapshotLSN, rinfo.SnapshotsSkipped, rinfo.Replayed, rinfo.CorruptSkipped)
		fmt.Println("recovered pool (accumulated weights):")
		for i, q := range ic.Pool().Queries {
			fmt.Printf("  %3d  id %5d  weight %10.4f  cost %12.0f  %.60s\n",
				i, q.ID, q.Weight, q.Cost, q.Text)
		}
		if err := trun.Close(); err != nil {
			fatal(err)
		}
		if rinfo.Partial {
			logger.Warn("recovery cut short by the deadline; report covers the replayed prefix")
			os.Exit(faults.ExitPartial)
		}
		return
	}

	var w *workload.Workload
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		w, err = workload.Load(g.Cat, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		w, err = g.Workload(*n, *seed)
		if err != nil {
			fatal(err)
		}
		o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), reg)
		o.SetElision(*elide)
		if err := ff.Apply(o); err != nil {
			fatal(err)
		}
		if err := o.FillCostsCtx(ctx, w, 0); err != nil {
			if !faults.IsCancellation(err) {
				fatal(err)
			}
			logger.Warn("deadline reached while filling costs")
		}
	}

	fmt.Printf("workload: %d queries, %d templates, %d tables referenced, total cost %.0f\n\n",
		w.Len(), w.NumTemplates(), w.TablesReferenced(), w.TotalCost())

	if *shards > 1 {
		parts := shard.Partition(w.Len(), *shards, func(i int) string { return w.Queries[i].TemplateID })
		fmt.Printf("shard layout at -shards %d (template-hash partition):\n", *shards)
		for s, part := range parts {
			tmplSeen := map[string]bool{}
			var cost float64
			for _, i := range part {
				tmplSeen[w.Queries[i].TemplateID] = true
				cost += w.Queries[i].Cost
			}
			fmt.Printf("  shard %2d: %5d queries  %4d templates  cost %12.0f\n",
				s, len(part), len(tmplSeen), cost)
		}
		fmt.Println()
	}

	// Template clusters by frequency.
	type tmpl struct {
		id    string
		count int
		cost  float64
	}
	byID := map[string]*tmpl{}
	for _, q := range w.Queries {
		tm := byID[q.TemplateID]
		if tm == nil {
			tm = &tmpl{id: q.TemplateID}
			byID[q.TemplateID] = tm
		}
		tm.count++
		tm.cost += q.Cost
	}
	var tmpls []*tmpl
	for _, tm := range byID {
		tmpls = append(tmpls, tm)
	}
	sort.Slice(tmpls, func(i, j int) bool {
		if tmpls[i].cost != tmpls[j].cost {
			return tmpls[i].cost > tmpls[j].cost
		}
		return tmpls[i].id < tmpls[j].id // total order: tmpls was collected in map order
	})
	fmt.Println("top templates by total cost:")
	for i, tm := range tmpls {
		if i >= *top {
			break
		}
		fmt.Printf("  %3d instances  cost %12.0f  %.70s\n", tm.count, tm.cost, tm.id)
	}

	// Per-query benefit diagnostics.
	copts := core.DefaultOptions()
	copts.Telemetry = reg
	copts.Progress = trun.ProgressFunc()
	states, err := core.BuildStatesContext(ctx, w, copts)
	if err != nil {
		if !faults.IsCancellation(err) {
			fatal(err)
		}
		logger.Warn("deadline reached; stopping after the template overview")
		if err := trun.Close(); err != nil {
			fatal(err)
		}
		os.Exit(faults.ExitPartial)
	}
	ss := core.BuildSummary(states)
	type qd struct {
		idx              int
		utility, benefit float64
	}
	var qds []qd
	for i, s := range states {
		qds = append(qds, qd{idx: i, utility: s.Utility, benefit: core.BenefitSummary(s, ss)})
	}
	sort.Slice(qds, func(i, j int) bool { return qds[i].benefit > qds[j].benefit })
	fmt.Printf("\ntop queries by benefit (utility + influence on summary):\n")
	for i, d := range qds {
		if i >= *top {
			break
		}
		q := w.Queries[d.idx]
		fmt.Printf("  #%-4d benefit %.4f  utility %.4f  cost %10.0f  %.60s\n",
			d.idx, d.benefit, d.utility, q.Cost, q.Text)
		if *showFeatures {
			v := states[d.idx].OrigVec.ToMap(states[d.idx].Interner)
			keys := make([]string, 0, len(v))
			for k := range v {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool {
				if v[keys[a]] != v[keys[b]] {
					return v[keys[a]] > v[keys[b]]
				}
				return keys[a] < keys[b] // total order: keys was collected in map order
			})
			for _, k := range keys {
				fmt.Printf("        %-30s %.3f\n", k, v[k])
			}
		}
	}

	// Summary features.
	fmt.Printf("\nworkload summary features (top weights):\n")
	if len(states) > 0 {
		sv := ss.V.ToMap(states[0].Interner)
		keys := make([]string, 0, len(sv))
		for k := range sv {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if sv[keys[a]] != sv[keys[b]] {
				return sv[keys[a]] > sv[keys[b]]
			}
			return keys[a] < keys[b] // total order: keys was collected in map order
		})
		for i, k := range keys {
			if i >= *top {
				break
			}
			fmt.Printf("  %-32s %.4f\n", k, sv[k])
		}
	}
	if err := trun.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(faults.ExitFailed)
}
