// Command workloadgen emits a benchmark workload as a JSON query log with
// optimizer-estimated costs — the input-workload format of Section 2.2.
//
// Usage:
//
//	workloadgen -benchmark tpch -n 2200 -sf 10 -seed 1 -out tpch.json
package main

import (
	"flag"
	"os"

	"isum/internal/benchmarks"
	"isum/internal/cost"
	"isum/internal/faults"
	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

var logger = telemetry.NewLogger(os.Stderr)

func main() {
	bench := flag.String("benchmark", "tpch", "benchmark: tpch, tpcds, dsb, realm, scalem")
	n := flag.Int("n", 0, "number of query instances (default: paper's Table 2 size)")
	shards := flag.Int("shards", 0, "report the template-hash shard balance a sharded compression at this shard count would see")
	sf := flag.Float64("sf", 10, "scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "output file (default stdout)")
	catalogOut := flag.String("catalog-out", "", "also export the catalog (schema + statistics) as JSON")
	elide := flag.Bool("elide", true,
		"elide redundant what-if optimizer calls via memoized atomic costs and cost bounds (DESIGN.md §16); results are identical either way")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	var ff faults.Flags
	ff.Register(flag.CommandLine)
	flag.Parse()

	trun, err := tf.Open(logger)
	if err != nil {
		fatal(err)
	}
	reg := trun.Registry
	parallel.SetTelemetry(reg)
	features.SetTelemetry(reg)
	shard.SetTelemetry(reg)
	workload.SetTelemetry(reg)
	ctx, cancel := ff.Context()
	defer cancel()

	g, err := benchmarks.FromName(*bench, *sf, *seed)
	if err != nil {
		fatal(err)
	}
	if *n == 0 {
		defaults := map[string]int{"TPC-H": 2200, "TPC-DS": 9100, "DSB": 520, "Real-M": 473, "Scale-M": 100000}
		*n = defaults[g.Name]
	}
	sp := reg.Start("workloadgen/generate")
	w, err := g.Workload(*n, *seed)
	if err != nil {
		fatal(err)
	}
	sp.End()
	sp = reg.Start("workloadgen/fill-costs")
	o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), reg)
	o.SetElision(*elide)
	if err := ff.Apply(o); err != nil {
		fatal(err)
	}
	fillErr := o.FillCostsCtx(ctx, w, 0)
	sp.End()
	partial := false
	if fillErr != nil {
		if !faults.IsCancellation(fillErr) {
			fatal(fillErr)
		}
		// Deadline hit: still emit the generated queries (costs stay zero so
		// downstream tools can re-fill them) and exit with the partial code.
		partial = true
		logger.Warn("deadline reached while filling costs; emitting zero-cost log")
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	if err := w.Save(f); err != nil {
		fatal(err)
	}
	if *catalogOut != "" {
		cf, err := os.Create(*catalogOut)
		if err != nil {
			fatal(err)
		}
		defer cf.Close()
		if err := g.Cat.SaveJSON(cf); err != nil {
			fatal(err)
		}
	}
	logger.Info("generated workload",
		"benchmark", g.Name, "queries", w.Len(),
		"templates", w.NumTemplates(), "tables", w.TablesReferenced())
	if *shards > 1 {
		parts := shard.Partition(w.Len(), *shards, func(i int) string { return w.Queries[i].TemplateID })
		min, max := w.Len(), 0
		for _, part := range parts {
			if len(part) < min {
				min = len(part)
			}
			if len(part) > max {
				max = len(part)
			}
		}
		logger.Info("shard balance", "shards", *shards, "min", min, "max", max)
	}
	if err := trun.Close(); err != nil {
		fatal(err)
	}
	if partial {
		os.Exit(faults.ExitPartial)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(faults.ExitFailed)
}
