// Command isum compresses a workload for index tuning.
//
// It reads a JSON query log (as produced by workloadgen, or harvested from
// a real system) against a named benchmark catalog, runs ISUM, and writes
// the compressed workload — k queries with weights — as a JSON log ready
// for the tune command.
//
// Usage:
//
//	isum -benchmark tpch -in tpch.json -k 20 -variant isum-s -out small.json
//
// Telemetry: -trace prints the phase tree (build-states, per-round greedy
// spans) to stderr, -metrics-out writes the JSON metrics+span export,
// -trace-out writes Perfetto-loadable trace-event JSON, -pprof-dir
// captures cpu/heap profiles around the run (DESIGN.md §8), and
// -debug-addr serves /metrics, /healthz, /progress, and /debug/pprof live
// while the run is in flight; -progress streams rate-limited progress
// lines to stderr (DESIGN.md §13).
//
// Durability: -wal-dir switches to a restartable session (DESIGN.md §14).
// The workload is observed in -batch sized batches through the durable
// store — each batch is appended to a checksummed write-ahead log before
// it is folded into the bounded pool, with periodic snapshots
// (-snapshot-every) and a -fsync policy. Killing the process mid-run
// loses nothing durable: rerunning with the same -wal-dir (and the same
// input stream) recovers the logged state, resumes after the recovered
// prefix, and converges on the same output as an uninterrupted run. The
// inspect command prints a recovery report for the same directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/durable"
	"isum/internal/faults"
	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

var logger = telemetry.NewLogger(os.Stderr)

func main() {
	bench := flag.String("benchmark", "tpch", "benchmark catalog: tpch, tpcds, dsb, realm")
	sf := flag.Float64("sf", 10, "scale factor")
	seed := flag.Int64("seed", 1, "seed (for realm catalog)")
	in := flag.String("in", "", "input workload JSON (default: generate the benchmark workload)")
	n := flag.Int("n", 473, "generated workload size (ignored with -in)")
	k := flag.Int("k", 20, "compressed workload size")
	variant := flag.String("variant", "isum",
		"isum (rule-based), isum-s (stats-based), notable, allpairs")
	out := flag.String("out", "", "output file (default stdout)")
	parallelism := flag.Int("parallelism", 0,
		"worker goroutines for compression hot paths (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	shards := flag.Int("shards", 0,
		"shard count for sharded compression (0/1 = single partition); shards are hashed by template and merged deterministically")
	cons := flag.Bool("cons", false,
		"hash-cons queries by template before selection: one state per distinct template, utilities pooled per Algorithm 4")
	batch := flag.Int("batch", 8,
		"observed batch size for the durable session (with -wal-dir): queries per WAL record and recompression")
	elide := flag.Bool("elide", true,
		"elide redundant what-if optimizer calls via memoized atomic costs and cost bounds (DESIGN.md §16); results are identical either way")
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	var ff faults.Flags
	ff.Register(flag.CommandLine)
	var df durable.Flags
	df.Register(flag.CommandLine)
	flag.Parse()

	trun, err := tf.Open(logger)
	if err != nil {
		fatal(err)
	}
	reg := trun.Registry
	parallel.SetTelemetry(reg)
	features.SetTelemetry(reg)
	shard.SetTelemetry(reg)
	workload.SetTelemetry(reg)
	ctx, cancel := ff.Context()
	defer cancel()

	g, err := benchmarks.FromName(*bench, *sf, *seed)
	if err != nil {
		fatal(err)
	}

	var w *workload.Workload
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		w, err = workload.Load(g.Cat, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		w, err = g.Workload(*n, *seed)
		if err != nil {
			fatal(err)
		}
		// Generated workloads carry no costs; fill them with the what-if
		// optimizer so utilities reflect the paper's input contract (and so
		// the telemetry export shows the what-if call/cache counts).
		sp := reg.Start("isum/fill-costs")
		o := cost.NewOptimizerWithTelemetry(g.Cat, cost.DefaultParams(), reg)
		o.SetElision(*elide)
		if err := ff.Apply(o); err != nil {
			fatal(err)
		}
		err = o.FillCostsCtx(ctx, w, *parallelism)
		sp.End()
		if err != nil {
			if !faults.IsCancellation(err) {
				fatal(err)
			}
			// Deadline hit while filling costs: fall through — compression
			// under the expired context returns an empty best-so-far result
			// and the binary exits with the partial code.
			logger.Warn("deadline reached while filling costs")
		}
	}

	var opts core.Options
	switch *variant {
	case "isum":
		opts = core.DefaultOptions()
	case "isum-s":
		opts = core.ISUMSOptions()
	case "notable":
		opts = core.NoTableOptions()
	case "allpairs":
		opts = core.DefaultOptions()
		opts.Algorithm = core.AllPairs
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	opts.Parallelism = *parallelism
	opts.Shards = *shards
	opts.ConsTemplates = *cons
	opts.Telemetry = reg
	opts.Progress = trun.ProgressFunc()

	var cw *workload.Workload
	var res *core.Result
	var name string
	if df.Enabled() {
		if *batch < 1 {
			fatal(fmt.Errorf("-batch must be >= 1"))
		}
		dopts, err := df.Build()
		if err != nil {
			fatal(err)
		}
		dopts.Catalog = g.Cat
		dopts.Compressor = opts
		dopts.PoolSize = *k
		dopts.Telemetry = reg
		st, rinfo, err := durable.Open(ctx, dopts)
		if err != nil {
			fatal(err)
		}
		logger.Info("durable store opened", "dir", df.Dir,
			"recovered_lsn", rinfo.LSN, "seen", rinfo.Seen,
			"snapshot_lsn", rinfo.SnapshotLSN, "replayed", rinfo.Replayed,
			"corrupt_skipped", rinfo.CorruptSkipped,
			"recovery", rinfo.Elapsed.Round(1000).String())
		// Resume after the recovered prefix: the store has already durably
		// observed the first rinfo.Seen queries of this stream, so a restart
		// picks up where the crashed session stopped instead of
		// double-counting. This assumes the same input stream (-in, or the
		// same -benchmark/-n/-seed) across restarts.
		skip := rinfo.Seen
		if skip > w.Len() {
			skip = w.Len()
		}
		if skip > 0 {
			logger.Info("resuming after recovered prefix", "skipped", skip)
		}
		for i := skip; i < w.Len(); i += *batch {
			end := i + *batch
			if end > w.Len() {
				end = w.Len()
			}
			res, err = st.Observe(ctx, w.Queries[i:end])
			if err != nil {
				fatal(err)
			}
			if res.Partial {
				break
			}
		}
		cw = st.Pool()
		if res == nil {
			res = &core.Result{}
		}
		if err := st.Close(); err != nil {
			fatal(err)
		}
		name = "durable/" + core.New(opts).Name()
	} else {
		comp := core.New(opts)
		cw, res, err = comp.CompressedWorkloadContext(ctx, w, *k)
		if err != nil {
			fatal(err)
		}
		name = comp.Name()
	}

	f := os.Stdout
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	if err := cw.Save(f); err != nil {
		fatal(err)
	}
	logger.Info("compressed workload",
		"variant", name, "selected", cw.Len(), "of", w.Len(),
		"elapsed", res.Elapsed.Round(1000).String())
	for i, idx := range res.Indices {
		logger.Info("selection",
			"query", idx,
			"weight", fmt.Sprintf("%.4f", res.Weights[i]),
			"benefit", fmt.Sprintf("%.4f", res.SelectionBenefits[i]))
	}
	if err := trun.Close(); err != nil {
		fatal(err)
	}
	if res.Partial {
		logger.Warn("deadline reached; output is the best-so-far selection", "rounds", res.Rounds)
		os.Exit(faults.ExitPartial)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(faults.ExitFailed)
}
