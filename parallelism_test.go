package isum_test

// Serial/parallel equivalence: the headline invariant of the parallel
// pipeline is that Parallelism is a pure wall-clock knob. Compression must
// select the same queries with the same weights, and tuning must recommend
// the same configuration, at parallelism 1, 2, and 8.
//
// Float comparisons use a 1e-9 tolerance rather than bit equality: feature
// vectors and candidate sets are Go maps, so summation order inside a
// single benefit or weight varies run to run (serial runs included) — the
// same noise the greedy loop's epsilon tie-break absorbs. The parallel
// scheduling itself adds no variance on top: per-index results are reduced
// serially in input order.

import (
	"math"
	"strings"
	"testing"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/workload"
)

const equivEps = 1e-9

func equivWorkload(t *testing.T, gen *benchmarks.Generator, n int) (*workload.Workload, *cost.Optimizer) {
	t.Helper()
	w, err := gen.Workload(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := cost.NewOptimizer(gen.Cat)
	o.FillCosts(w)
	return w, o
}

func TestCompressSerialParallelEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		gen  *benchmarks.Generator
		n    int
	}{
		{"TPC-H", benchmarks.TPCH(10), 110},
		{"TPC-DS", benchmarks.TPCDS(10), 130},
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"isum", core.DefaultOptions()},
		{"isum-s", core.ISUMSOptions()},
		{"allpairs", func() core.Options {
			o := core.DefaultOptions()
			o.Algorithm = core.AllPairs
			return o
		}()},
	}
	for _, wl := range workloads {
		w, _ := equivWorkload(t, wl.gen, wl.n)
		for _, v := range variants {
			t.Run(wl.name+"/"+v.name, func(t *testing.T) {
				serialOpts := v.opts
				serialOpts.Parallelism = 1
				ref := core.New(serialOpts).Compress(w, 15)
				if len(ref.Indices) == 0 {
					t.Fatal("serial run selected nothing")
				}
				for _, p := range []int{2, 8} {
					parOpts := v.opts
					parOpts.Parallelism = p
					got := core.New(parOpts).Compress(w, 15)
					if len(got.Indices) != len(ref.Indices) {
						t.Fatalf("parallelism %d: selected %d queries, serial selected %d",
							p, len(got.Indices), len(ref.Indices))
					}
					for i := range ref.Indices {
						if got.Indices[i] != ref.Indices[i] {
							t.Fatalf("parallelism %d: selection diverged at %d: %v vs %v",
								p, i, got.Indices, ref.Indices)
						}
						if d := math.Abs(got.Weights[i] - ref.Weights[i]); d > equivEps {
							t.Fatalf("parallelism %d: weight %d drifted by %g", p, i, d)
						}
						if d := math.Abs(got.SelectionBenefits[i] - ref.SelectionBenefits[i]); d > equivEps {
							t.Fatalf("parallelism %d: benefit %d drifted by %g", p, i, d)
						}
					}
				}
			})
		}
	}
}

func TestTuneSerialParallelEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		gen  *benchmarks.Generator
		n    int
	}{
		{"TPC-H", benchmarks.TPCH(10), 66},
		{"TPC-DS", benchmarks.TPCDS(10), 60},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			w, o := equivWorkload(t, wl.gen, wl.n)
			copts := core.DefaultOptions()
			copts.Parallelism = 1
			cw, _ := core.New(copts).CompressedWorkload(w, 12)

			tune := func(p int) *advisor.Result {
				opts := advisor.DefaultOptions()
				opts.MaxIndexes = 8
				opts.Parallelism = p
				return advisor.New(o, opts).Tune(cw)
			}
			configIDs := func(r *advisor.Result) string {
				var ids []string
				for _, ix := range r.Config.Indexes() {
					ids = append(ids, ix.ID())
				}
				return strings.Join(ids, " | ")
			}

			// Warm the optimizer's elision memo first: the initial tune on
			// a fresh optimizer records the atomic costs that later runs
			// elide, so only warm runs have parallelism-independent
			// OptimizerCalls. Recommendations are identical either way
			// (pinned by TestElisionDoesNotChangeOutput).
			tune(1)
			ref := tune(1)
			if ref.Config.Len() == 0 {
				t.Fatal("serial tuning recommended nothing")
			}
			refIDs := configIDs(ref)
			for _, p := range []int{2, 8} {
				got := tune(p)
				if ids := configIDs(got); ids != refIDs {
					t.Fatalf("parallelism %d recommended a different configuration:\n%s\nvs serial:\n%s",
						p, ids, refIDs)
				}
				if d := math.Abs(got.FinalCost - ref.FinalCost); d > equivEps*math.Max(1, ref.FinalCost) {
					t.Fatalf("parallelism %d: final cost drifted by %g", p, d)
				}
				if got.OptimizerCalls != ref.OptimizerCalls {
					t.Fatalf("parallelism %d made %d optimizer calls, serial made %d",
						p, got.OptimizerCalls, ref.OptimizerCalls)
				}

				pct, base, final := advisor.EvaluateImprovementN(o, w, got.Config, p)
				refPct, refBase, refFinal := advisor.EvaluateImprovementN(o, w, ref.Config, 1)
				if pct != refPct || base != refBase || final != refFinal {
					t.Fatalf("parallelism %d: evaluation diverged: (%v %v %v) vs (%v %v %v)",
						p, pct, base, final, refPct, refBase, refFinal)
				}
			}
		})
	}
}
